package mat

import (
	"math"
	//lint:ignore norand in-package mat tests cannot import repro/internal/rng (rng depends on mat); the raw PCG here is still fixed-seed deterministic
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// newTestRand returns a fixed-seed PCG stream for in-package property
// tests. Living here keeps the math/rand/v2 import (and its norand
// waiver) in one place; sibling test files call this and let type
// inference carry the stream.
func newTestRand(seed1, seed2 uint64) *rand.Rand { return rand.New(rand.NewPCG(seed1, seed2)) }

// randomSPD builds a random symmetric positive-definite matrix A = GᵀG + n·I.
func randomSPD(rng *rand.Rand, n int) *Dense {
	g := randomDense(rng, n, n)
	a := Mul(g.T(), g)
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

func maxDiff(a, b *Dense) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > m {
				m = d
			}
		}
	}
	return m
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := Mul(c.L(), c.L().T())
		if d := maxDiff(a, recon); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: reconstruction error %v", n, d)
		}
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	a := randomSPD(rng, 12)
	xTrue := randomVec(rng, 12)
	b := MulVec(a, xTrue)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := c.SolveVec(b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskySolveMatAndInverse(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	a := randomSPD(rng, 8)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	inv := c.Inverse()
	prod := Mul(a, inv)
	if d := maxDiff(prod, Identity(8)); d > 1e-9 {
		t.Fatalf("A·A⁻¹ differs from I by %v", d)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	// Diagonal matrix: logdet is the sum of log of diagonal entries.
	d := NewDense(3, 3, nil)
	d.Set(0, 0, 2)
	d.Set(1, 1, 3)
	d.Set(2, 2, 4)
	c, err := NewCholesky(d, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(2) + math.Log(3) + math.Log(4)
	if !almostEq(c.LogDet(), want, 1e-12) {
		t.Fatalf("logdet = %v, want %v", c.LogDet(), want)
	}
}

func TestCholeskyForwardBack(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	a := randomSPD(rng, 6)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := randomVec(rng, 6)
	// back(forward(b)) should equal SolveVec(b).
	y := c.ForwardSolveVec(b)
	x := c.BackSolveVec(y)
	x2 := c.SolveVec(b)
	for i := range x {
		if !almostEq(x[i], x2[i], 1e-12) {
			t.Fatal("forward+back != solve")
		}
	}
	// L·forward(b) == b
	lb := MulVec(c.L(), y)
	for i := range lb {
		if !almostEq(lb[i], b[i], 1e-10) {
			t.Fatal("forward solve incorrect")
		}
	}
}

func TestCholeskyJitterRecovery(t *testing.T) {
	// Rank-deficient matrix needs jitter; it must factorize with jitter > 0.
	n := 5
	x := randomVec(rand.New(rand.NewPCG(11, 11)), n)
	a := NewDense(n, n, nil)
	a.SymOuterUpdate(1, x) // rank one
	c, err := NewCholesky(a, 1e-8, 1)
	if err != nil {
		t.Fatalf("jitter escalation failed: %v", err)
	}
	if c.Jitter() <= 0 {
		t.Fatal("expected nonzero jitter for singular matrix")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 0, 0, -5})
	if _, err := NewCholesky(a, 1e-12, 1e-10); err == nil {
		t.Fatal("expected failure for indefinite matrix with tiny max jitter")
	}
}

func TestCholeskyExtend(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	for _, tc := range []struct{ n, m int }{{3, 1}, {5, 2}, {10, 4}, {1, 1}} {
		full := randomSPD(rng, tc.n+tc.m)
		// Split into blocks.
		a := NewDense(tc.n, tc.n, nil)
		b := NewDense(tc.n, tc.m, nil)
		cc := NewDense(tc.m, tc.m, nil)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				a.Set(i, j, full.At(i, j))
			}
			for j := 0; j < tc.m; j++ {
				b.Set(i, j, full.At(i, tc.n+j))
			}
		}
		for i := 0; i < tc.m; i++ {
			for j := 0; j < tc.m; j++ {
				cc.Set(i, j, full.At(tc.n+i, tc.n+j))
			}
		}
		ca, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ext, err := ca.Extend(b, cc)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := NewCholesky(full, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(ext.L(), direct.L()); d > 1e-8 {
			t.Fatalf("n=%d m=%d: extended factor differs by %v", tc.n, tc.m, d)
		}
	}
}

func TestCholeskyExtendSolveConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	full := randomSPD(rng, 9)
	a := NewDense(6, 6, nil)
	b := NewDense(6, 3, nil)
	cc := NewDense(3, 3, nil)
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			a.Set(i, j, full.At(i, j))
		}
		for j := 0; j < 3; j++ {
			b.Set(i, j, full.At(i, 6+j))
		}
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			cc.Set(i, j, full.At(6+i, 6+j))
		}
	}
	ca, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := ca.Extend(b, cc)
	if err != nil {
		t.Fatal(err)
	}
	rhs := randomVec(rng, 9)
	x := ext.SolveVec(rhs)
	back := MulVec(full, x)
	for i := range rhs {
		if !almostEq(back[i], rhs[i], 1e-8) {
			t.Fatalf("extend solve mismatch: %v vs %v", back[i], rhs[i])
		}
	}
}

// Property: for any SPD matrix, solving then multiplying round-trips.
func TestCholeskySolveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 1 + int(rng.Uint64()%12)
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			return false
		}
		b := randomVec(rng, n)
		x := c.SolveVec(b)
		ax := MulVec(a, x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LogDet matches the product of squared diagonal factor entries.
func TestCholeskyLogDetProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 7))
		n := 1 + int(rng.Uint64()%8)
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			return false
		}
		var sum float64
		for i := 0; i < n; i++ {
			sum += 2 * math.Log(c.L().At(i, i))
		}
		return almostEq(c.LogDet(), sum, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholesky100(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomSPD(rng, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyExtend100x4(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	full := randomSPD(rng, 104)
	a := NewDense(100, 100, nil)
	bb := NewDense(100, 4, nil)
	cc := NewDense(4, 4, nil)
	for i := 0; i < 100; i++ {
		for j := 0; j < 100; j++ {
			a.Set(i, j, full.At(i, j))
		}
		for j := 0; j < 4; j++ {
			bb.Set(i, j, full.At(i, 100+j))
		}
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			cc.Set(i, j, full.At(100+i, 100+j))
		}
	}
	ca, err := NewCholesky(a, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ca.Extend(bb, cc); err != nil {
			b.Fatal(err)
		}
	}
}
