package mat

import (
	"math"
	//lint:ignore norand in-package mat tests cannot import repro/internal/rng (rng depends on mat); the raw PCG here is still fixed-seed deterministic
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4, nil)
	r, c := m.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseBacking(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := NewDense(2, 3, d)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", m)
	}
}

func TestNewDenseBadBacking(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong backing length")
		}
	}()
	NewDense(2, 3, []float64{1, 2})
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2, nil)
	m.Set(1, 0, 5)
	m.Add(1, 0, 2.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("At(1,0) = %v, want 7.5", got)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2, nil)
	for _, f := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
		func() { m.Row(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if m.At(i, j) != want {
				t.Fatalf("identity(%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := Mul(a, b)
	want := [][]float64{{58, 64}, {139, 154}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	a := randomDense(rng, 5, 5)
	c := Mul(a, Identity(5))
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if c.At(i, j) != a.At(i, j) {
				t.Fatal("A·I != A")
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("mulvec = %v, want [-2 -2]", got)
	}
}

func TestMulVecT(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVecT(a, []float64{1, -1})
	want := []float64{-3, -3, -3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mulvecT = %v, want %v", got, want)
		}
	}
}

func TestTranspose(t *testing.T) {
	a := NewDense(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := a.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %d×%d", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != a.At(i, j) {
				t.Fatal("transpose mismatch")
			}
		}
	}
}

func TestDotNormAxpy(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("norm2 wrong")
	}
	if Norm2(nil) != 0 {
		t.Fatal("norm2 of empty should be 0")
	}
	y := []float64{1, 1}
	AxpyVec(2, []float64{1, -1}, y)
	if y[0] != 3 || y[1] != -1 {
		t.Fatalf("axpy = %v", y)
	}
}

func TestNorm2Overflow(t *testing.T) {
	big := math.MaxFloat64 / 4
	got := Norm2([]float64{big, big})
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("norm2 overflowed: %v", got)
	}
	if !almostEq(got, big*math.Sqrt2, 1e-12) {
		t.Fatalf("norm2 = %v, want %v", got, big*math.Sqrt2)
	}
}

func TestTraceAndTraceMul(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	a := randomDense(rng, 4, 6)
	b := randomDense(rng, 6, 4)
	direct := Mul(a, b).Trace()
	if !almostEq(TraceMul(a, b), direct, 1e-12) {
		t.Fatalf("traceMul = %v, want %v", TraceMul(a, b), direct)
	}
}

func TestSymOuterUpdate(t *testing.T) {
	m := NewDense(2, 2, nil)
	m.SymOuterUpdate(2, []float64{1, 3})
	if m.At(0, 0) != 2 || m.At(0, 1) != 6 || m.At(1, 0) != 6 || m.At(1, 1) != 18 {
		t.Fatalf("symOuterUpdate = %v", m)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewDense(2, 2, []float64{1, 2, 3, 4})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
}

func TestScaleAddScaled(t *testing.T) {
	a := NewDense(1, 3, []float64{1, 2, 3})
	b := NewDense(1, 3, []float64{10, 20, 30})
	a.Scale(2)
	a.AddScaled(0.5, b)
	want := []float64{7, 14, 21}
	for i, v := range want {
		if a.At(0, i) != v {
			t.Fatalf("a = %v, want %v", a.Row(0), want)
		}
	}
}

func TestMaxAbs(t *testing.T) {
	a := NewDense(2, 2, []float64{1, -7, 3, 4})
	if a.MaxAbs() != 7 {
		t.Fatalf("maxAbs = %v", a.MaxAbs())
	}
	if NewDense(0, 0, nil).MaxAbs() != 0 {
		t.Fatal("maxAbs of empty should be 0")
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		r := 1 + int(rng.Uint64()%6)
		k := 1 + int(rng.Uint64()%6)
		c := 1 + int(rng.Uint64()%6)
		a := randomDense(rng, r, k)
		b := randomDense(rng, k, c)
		lhs := Mul(a, b).T()
		rhs := Mul(b.T(), a.T())
		for i := 0; i < lhs.Rows(); i++ {
			for j := 0; j < lhs.Cols(); j++ {
				if !almostEq(lhs.At(i, j), rhs.At(i, j), 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVec is linear: A(αx+βy) = αAx + βAy.
func TestMulVecLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		r := 1 + int(rng.Uint64()%5)
		c := 1 + int(rng.Uint64()%5)
		a := randomDense(rng, r, c)
		x := randomVec(rng, c)
		y := randomVec(rng, c)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		z := make([]float64, c)
		for i := range z {
			z[i] = alpha*x[i] + beta*y[i]
		}
		lhs := MulVec(a, z)
		ax, ay := MulVec(a, x), MulVec(a, y)
		for i := range lhs {
			if !almostEq(lhs[i], alpha*ax[i]+beta*ay[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c, nil)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func BenchmarkMul64(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	a := randomDense(rng, 64, 64)
	c := randomDense(rng, 64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}
