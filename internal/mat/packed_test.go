package mat

import (
	"math"
	"runtime"
	"testing"
)

// This file pins the packed-triangular refactor to the dense reference
// implementation it replaced: in-test dense re-implementations of
// factorize, both solve layouts, Inverse and Extend evaluate the exact
// floating-point operation DAG the pre-packed code ran, and every packed
// result must match them bit for bit on random SPD inputs. The packed
// layout is allowed to change addresses, never arithmetic.

// denseRefFactor is the pre-packed textbook factorization of a + jitter·I
// into a dense lower triangle.
func denseRefFactor(t *testing.T, a *Dense, jitter float64) *Dense {
	t.Helper()
	n := a.rows
	l := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		lrow := l.Row(i)
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			if i == j {
				sum += jitter
			}
			ljrow := l.Row(j)
			for k := 0; k < j; k++ {
				sum -= lrow[k] * ljrow[k]
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					t.Fatalf("dense reference factorization failed at pivot %d", i)
				}
				lrow[j] = math.Sqrt(sum)
			} else {
				lrow[j] = sum / ljrow[j]
			}
		}
	}
	return l
}

// denseRefForward / denseRefBack are the pre-packed direct solve kernels
// on a dense lower triangle.
func denseRefForward(l *Dense, y []float64) {
	n := l.rows
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := y[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
}

func denseRefBack(l *Dense, y []float64) {
	n := l.rows
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
}

// denseRefInverse is the pre-packed two-phase triangular inverse.
func denseRefInverse(l *Dense) *Dense {
	n := l.rows
	wt := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		wrow := wt.Row(i)
		wrow[i] = 1 / l.At(i, i)
		for k := i + 1; k < n; k++ {
			lrow := l.Row(k)[:k]
			var s float64
			for j := i; j < k; j++ {
				s -= lrow[j] * wrow[j]
			}
			wrow[k] = s / l.At(k, k)
		}
	}
	inv := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		wi := wt.Row(i)
		for j := 0; j <= i; j++ {
			wj := wt.Row(j)
			var s float64
			for k := i; k < n; k++ {
				s += wi[k] * wj[k]
			}
			inv.data[i*n+j] = s
			inv.data[j*n+i] = s
		}
	}
	return inv
}

func vecBitsEqual(t *testing.T, got, want []float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestPackedFactorizeMatchesDense: packed factorization reproduces the
// dense reference bit for bit across sizes, including the odd sizes that
// exercise every remainder path of the blocked kernels.
func TestPackedFactorizeMatchesDense(t *testing.T) {
	rng := newTestRand(31, 7)
	for _, n := range []int{1, 2, 3, 5, 8, 17, 33, 64, 101} {
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: NewCholesky: %v", n, err)
		}
		ref := denseRefFactor(t, a, c.Jitter())
		bitsEqual(t, c.L(), ref, "packed vs dense factor")
		// LogDet reads packed pivots; cross-check against dense pivots.
		var want float64
		for i := 0; i < n; i++ {
			want += math.Log(ref.At(i, i))
		}
		want *= 2
		if math.Float64bits(c.LogDet()) != math.Float64bits(want) {
			t.Fatalf("n=%d: LogDet = %v, want %v", n, c.LogDet(), want)
		}
	}
}

// TestPackedSolvesMatchDense: both solve layouts — the direct packed-row
// kernels and the packed column-major fast path built on the second
// solve — must match the dense reference kernels bitwise. This is the
// bit-identity argument for the layout change: per element, updates
// arrive in increasing k with the division at the same point, so storage
// cannot touch the result.
func TestPackedSolvesMatchDense(t *testing.T) {
	rng := newTestRand(41, 9)
	for _, n := range []int{1, 2, 3, 7, 30, 65, 129} {
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: NewCholesky: %v", n, err)
		}
		ref := denseRefFactor(t, a, c.Jitter())
		b := randomVec(rng, n)

		want := append([]float64(nil), b...)
		denseRefForward(ref, want)
		fwdDirect := c.ForwardSolveVec(b) // first solve: direct layout
		vecBitsEqual(t, fwdDirect, want, "direct forward solve")
		fwdFast := c.ForwardSolveVec(b) // second solve: builds + uses the cache
		if !c.HasTransposeCache() {
			t.Fatalf("n=%d: second solve did not build the cache", n)
		}
		vecBitsEqual(t, fwdFast, want, "fast forward solve")

		wantBack := append([]float64(nil), b...)
		denseRefBack(ref, wantBack)
		vecBitsEqual(t, c.BackSolveVec(b), wantBack, "fast back solve")

		full := append([]float64(nil), b...)
		denseRefForward(ref, full)
		denseRefBack(ref, full)
		vecBitsEqual(t, c.SolveVec(b), full, "full solve")

		// A factor denied the cache must produce the same bits direct.
		c2, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: NewCholesky: %v", n, err)
		}
		vecBitsEqual(t, c2.BackSolveVec(b), wantBack, "direct back solve")
		vecBitsEqual(t, c2.SolveVec(b), full, "direct full solve")
	}
}

// TestPackedSolveMatAndInverseMatchDense: the multi-column entry points
// run the same kernels column by column; Inverse runs the two-phase
// triangular inverse on packed reads. Both must match the dense
// references bitwise, and InverseInto must be indifferent to dirty
// scratch.
func TestPackedSolveMatAndInverseMatchDense(t *testing.T) {
	rng := newTestRand(51, 3)
	const n, m = 23, 4
	a := randomSPD(rng, n)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	ref := denseRefFactor(t, a, c.Jitter())

	b := randomDense(rng, n, m)
	want := NewDense(n, m, nil)
	col := make([]float64, n)
	for j := 0; j < m; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		denseRefForward(ref, col)
		denseRefBack(ref, col)
		for i := 0; i < n; i++ {
			want.Set(i, j, col[i])
		}
	}
	bitsEqual(t, c.SolveMat(b), want, "SolveMat vs dense reference")

	wantInv := denseRefInverse(ref)
	bitsEqual(t, c.Inverse(), wantInv, "Inverse vs dense reference")

	inv := NewDense(n, n, nil)
	wt := NewDense(n, n, nil)
	for i := range inv.data {
		inv.data[i] = math.NaN()
		wt.data[i] = math.Inf(1)
	}
	bitsEqual(t, c.InverseInto(inv, wt), wantInv, "InverseInto with dirty scratch")
}

// TestPackedExtendMatchesDenseReference: Extend on the packed layout must
// reproduce the dense reference extension — parent copy, per-column
// forward solves, Schur complement, corner factorization — bit for bit,
// through both the direct path (fresh parent) and the cached path
// (pre-solved parent), matching TestExtendPathsAgree's contract.
func TestPackedExtendMatchesDenseReference(t *testing.T) {
	rng := newTestRand(61, 13)
	const n, m = 27, 3
	a := randomSPD(rng, n)
	b := randomDense(rng, n, m)
	cc := spdBlock(rng, m, float64(n))

	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	ref := denseRefFactor(t, a, c.Jitter())

	// Dense reference extension.
	w := NewDense(m, n, nil)
	for j := 0; j < m; j++ {
		row := w.Row(j)
		for i := 0; i < n; i++ {
			row[i] = b.At(i, j)
		}
		denseRefForward(ref, row)
	}
	s := NewDense(m, m, nil)
	for i := 0; i < m; i++ {
		for j := 0; j <= i; j++ {
			v := cc.At(i, j) - Dot(w.Row(i), w.Row(j))
			s.Set(i, j, v)
			s.Set(j, i, v)
		}
	}
	scPacked, err := NewCholesky(s, 0, 0)
	if err != nil {
		t.Fatalf("corner factor: %v", err)
	}
	sc := denseRefFactor(t, s, scPacked.Jitter())
	want := NewDense(n+m, n+m, nil)
	for i := 0; i < n; i++ {
		copy(want.Row(i)[:i+1], ref.Row(i)[:i+1])
	}
	for j := 0; j < m; j++ {
		copy(want.Row(n + j)[:n], w.Row(j))
		copy(want.Row(n + j)[n:n+j+1], sc.Row(j)[:j+1])
	}

	ext, err := c.Extend(b, cc)
	if err != nil {
		t.Fatalf("Extend: %v", err)
	}
	bitsEqual(t, ext.L(), want, "packed Extend vs dense reference")

	solvedParent, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatalf("NewCholesky: %v", err)
	}
	solvedParent.SolveVec(randomVec(rng, n))
	extFast, err := solvedParent.Extend(b, cc)
	if err != nil {
		t.Fatalf("Extend (fast): %v", err)
	}
	bitsEqual(t, extFast.L(), want, "packed Extend (cached parent) vs dense reference")
}

// TestInheritedPrefixSolveBitIdentity pins the mixed solve kernels: a
// child carrying its parent's cache prefix (np < n) reads rows below np
// from the shared packed columns and the extension rows from packed row
// storage, and must produce exactly the bits a cache-less child produces
// on the direct layout — down a three-link chain sharing one root cache.
func TestInheritedPrefixSolveBitIdentity(t *testing.T) {
	rng := newTestRand(71, 17)
	const n = 33
	a := randomSPD(rng, n)

	build := func(withCache bool) *Cholesky {
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("NewCholesky: %v", err)
		}
		if withCache {
			c.SolveVec(randomVec(rng, n)) // advance the trigger...
			c.SolveVec(randomVec(rng, n)) // ...and build the cache
			if !c.HasTransposeCache() {
				t.Fatal("cache not built")
			}
		}
		return c
	}

	root := build(true)
	plain := build(false)

	curFast, curDirect := root, plain
	for link := 0; link < 3; link++ {
		m := 1 + link%2
		bc := randomDense(rng, curFast.Size(), m)
		cc := spdBlock(rng, m, float64(n))
		extFast, err := curFast.Extend(bc, cc)
		if err != nil {
			t.Fatalf("link %d: Extend (fast): %v", link, err)
		}
		extDirect, err := curDirect.Extend(bc, cc)
		if err != nil {
			t.Fatalf("link %d: Extend (direct): %v", link, err)
		}
		if !extFast.SharesTransposeCache(root) {
			t.Fatalf("link %d did not inherit the root cache", link)
		}
		if extDirect.HasTransposeCache() {
			t.Fatalf("link %d of the cache-less chain built a cache", link)
		}

		nn := extFast.Size()
		rhs := randomVec(rng, nn)
		// The inherited factor solves on the mixed prefix+packed-row path
		// from its first solve. The reference bits come from throwaway
		// siblings of the cache-less child, each serving exactly one solve
		// so none ever crosses the fast-path trigger — pure direct layout.
		sibling := func() *Cholesky {
			e, err := curDirect.Extend(bc, cc)
			if err != nil {
				t.Fatalf("link %d: Extend (sibling): %v", link, err)
			}
			return e
		}
		vecBitsEqual(t, extFast.SolveVec(rhs), sibling().SolveVec(rhs), "chain SolveVec")
		vecBitsEqual(t, extFast.ForwardSolveVec(rhs), sibling().ForwardSolveVec(rhs), "chain ForwardSolveVec")
		vecBitsEqual(t, extFast.BackSolveVec(rhs), sibling().BackSolveVec(rhs), "chain BackSolveVec")
		if math.Float64bits(extFast.LogDet()) != math.Float64bits(extDirect.LogDet()) {
			t.Fatalf("link %d: LogDet differs", link)
		}
		curFast, curDirect = extFast, extDirect
	}

	// The shared prefix belongs to the root: FactorBytes charges it there
	// and nowhere else.
	rootBytes := root.FactorBytes()
	if want := (packedLen(n) + packedLen(n)) * 8; rootBytes != want {
		t.Fatalf("root FactorBytes = %d, want %d", rootBytes, want)
	}
	if got, want := curFast.FactorBytes(), packedLen(curFast.Size())*8; got != want {
		t.Fatalf("chain FactorBytes = %d, want %d (inherited prefix must not be double-counted)", got, want)
	}
}

// TestRefactorizeMatchesNew: recycling a factor through Refactorize must
// be indistinguishable — bits, jitter, trigger state — from a fresh
// NewCholesky, across size changes and after the previous life built a
// cache and shared it with a child.
func TestRefactorizeMatchesNew(t *testing.T) {
	rng := newTestRand(81, 19)
	c := &Cholesky{}
	var child *Cholesky
	var childA *Dense
	for round, n := range []int{12, 29, 29, 8} {
		a := randomSPD(rng, n)
		if err := c.Refactorize(a, 0, 0); err != nil {
			t.Fatalf("round %d: Refactorize: %v", round, err)
		}
		fresh, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("round %d: NewCholesky: %v", round, err)
		}
		if c.Jitter() != fresh.Jitter() || c.Size() != fresh.Size() {
			t.Fatalf("round %d: jitter/size mismatch", round)
		}
		bitsEqual(t, c.L(), fresh.L(), "Refactorize vs NewCholesky")
		if c.HasTransposeCache() {
			t.Fatalf("round %d: Refactorize kept a stale cache", round)
		}
		b := randomVec(rng, n)
		vecBitsEqual(t, c.SolveVec(b), fresh.SolveVec(b), "recycled solve")

		if round == 1 {
			// Build the cache and hand it to a child; later rounds must not
			// disturb the child's snapshot.
			c.SolveVec(b)
			bc := randomDense(rng, n, 1)
			cc := spdBlock(rng, 1, float64(n))
			child, err = c.Extend(bc, cc)
			if err != nil {
				t.Fatalf("Extend: %v", err)
			}
			childA = NewDense(n+1, n+1, nil)
			lc := child.L()
			MulInto(childA, lc, lc.T())
		}
	}
	if child == nil || !child.HasTransposeCache() {
		t.Fatal("child lost its inherited cache after parent Refactorize")
	}
	// The child still solves correctly against its own matrix.
	rhs := randomVec(rng, child.Size())
	x := child.SolveVec(rhs)
	back := make([]float64, len(rhs))
	for i := 0; i < child.Size(); i++ {
		back[i] = Dot(childA.Row(i), x)
	}
	for i := range rhs {
		if math.Abs(back[i]-rhs[i]) > 1e-8 {
			t.Fatalf("child solve after parent recycle: A·x[%d] = %v, want %v", i, back[i], rhs[i])
		}
	}
}

// TestLRow exposes packed rows without materializing L.
// TestInverseIntoParallelBitIdentity forces InverseInto down its banded
// branch on a small factor and checks it reproduces the serial branch
// byte for byte at GOMAXPROCS 1 and 8. Unlike the banded LML gradient
// there is no reduction here — every wt row and every inv cell is
// computed independently — so banded and serial must agree at every n,
// not just across worker counts.
func TestInverseIntoParallelBitIdentity(t *testing.T) {
	rng := newTestRand(97, 17)
	for _, n := range []int{1, 5, 63, 64, 70, 129} {
		a := randomSPD(rng, n)
		c, err := NewCholesky(a, 0, 0)
		if err != nil {
			t.Fatalf("n=%d: NewCholesky: %v", n, err)
		}
		want := c.Inverse() // serial: n < invParallelN

		old := invParallelN
		invParallelN = 1
		for _, procs := range []int{1, 8} {
			oldProcs := runtime.GOMAXPROCS(procs)
			inv := NewDense(n, n, nil)
			wt := NewDense(n, n, nil)
			for i := range inv.data {
				inv.data[i] = math.NaN()
				wt.data[i] = math.Inf(1)
			}
			got := c.InverseInto(inv, wt)
			runtime.GOMAXPROCS(oldProcs)
			bitsEqual(t, got, want, "banded InverseInto vs serial")
		}
		invParallelN = old
	}
}

func TestLRow(t *testing.T) {
	rng := newTestRand(91, 23)
	const n = 9
	c := freshFactor(t, rng, n)
	l := c.L()
	for i := 0; i < n; i++ {
		row := c.LRow(i, make([]float64, i+1))
		vecBitsEqual(t, row, l.Row(i)[:i+1], "LRow")
	}
	mustPanic(t, "row out of range", func() { c.LRow(n, make([]float64, n+1)) })
	mustPanic(t, "bad dst length", func() { c.LRow(2, make([]float64, 2)) })
}
