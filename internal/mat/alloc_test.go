package mat

import (
	//lint:ignore norand in-package mat tests cannot import repro/internal/rng (rng depends on mat); the raw PCG here is still fixed-seed deterministic
	"math/rand/v2"
	"testing"

	"repro/internal/fp"
	"repro/internal/testutil"
)

// TestSolveIntoAllocs pins the destination-passing triangular solves at
// zero allocations per call: these run inside gp.Predict and the
// acquisition inner loop, where any per-call garbage multiplies by the
// number of multistart iterations (DESIGN.md §9).
func TestSolveIntoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	rng := rand.New(rand.NewPCG(21, 21))
	const n = 32
	a := randomSPD(rng, n)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	// Two warm solves: the first marks the factor as solved, the second
	// builds the transposed-layout cache. Steady state is alloc-free.
	c.SolveVecInto(dst, b)
	c.SolveVecInto(dst, b)

	if got := testing.AllocsPerRun(100, func() {
		c.ForwardSolveVecInto(dst, b)
	}); got > 0 {
		t.Fatalf("ForwardSolveVecInto allocates %v times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		c.BackSolveVecInto(dst, b)
	}); got > 0 {
		t.Fatalf("BackSolveVecInto allocates %v times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		c.SolveVecInto(dst, b)
	}); got > 0 {
		t.Fatalf("SolveVecInto allocates %v times per call, want 0", got)
	}
}

// TestMulIntoAllocs pins the destination-passing matrix products at zero
// allocations when dst is pre-sized.
func TestMulIntoAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	rng := rand.New(rand.NewPCG(22, 22))
	a := randomDense(rng, 16, 24)
	bm := randomDense(rng, 24, 8)
	dst := NewDense(16, 8, nil)
	x := make([]float64, 24)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	v := make([]float64, 16)
	vt := make([]float64, 24)
	xt := make([]float64, 16)

	if got := testing.AllocsPerRun(100, func() {
		MulInto(dst, a, bm)
	}); got > 0 {
		t.Fatalf("MulInto allocates %v times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		MulVecInto(v, a, x)
	}); got > 0 {
		t.Fatalf("MulVecInto allocates %v times per call, want 0", got)
	}
	if got := testing.AllocsPerRun(100, func() {
		MulVecTInto(vt, a, xt)
	}); got > 0 {
		t.Fatalf("MulVecTInto allocates %v times per call, want 0", got)
	}
}

// TestIntoVariantsMatchAllocating checks that every *Into variant is
// bitwise identical to its allocating wrapper — the wrappers are thin
// shims over the Into forms, so any drift here means the shim copied
// state it should not have.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 23))
	const n = 17
	a := randomSPD(rng, n)
	c, err := NewCholesky(a, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)

	checkSame := func(name string, want, got []float64) {
		t.Helper()
		for i := range want {
			if !fp.Exact(want[i], got[i]) {
				t.Fatalf("%s[%d] = %v, allocating variant gives %v", name, i, got[i], want[i])
			}
		}
	}
	checkSame("ForwardSolveVecInto", c.ForwardSolveVec(b), c.ForwardSolveVecInto(dst, b))
	checkSame("BackSolveVecInto", c.BackSolveVec(b), c.BackSolveVecInto(dst, b))
	checkSame("SolveVecInto", c.SolveVec(b), c.SolveVecInto(dst, b))

	// Aliased dst==b must also work for the solve family.
	alias := append([]float64(nil), b...)
	want := c.SolveVec(b)
	c.SolveVecInto(alias, alias)
	checkSame("SolveVecInto(aliased)", want, alias)
}
