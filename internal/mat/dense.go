// Package mat implements the dense linear algebra needed by Gaussian
// process regression: row-major matrices, vectors, Cholesky factorization
// with adaptive jitter, incremental Cholesky extension, and triangular
// solves. It is deliberately small — only what the BO stack requires — and
// depends on nothing outside the standard library and the internal/fp
// comparison helpers.
package mat

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fp"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c matrix. If data is non-nil it is used as the
// backing slice (it must have length r*c).
func NewDense(r, c int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	} else if len(data) != r*c {
		panic(fmt.Sprintf("mat: backing slice length %d != %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: copy dims %d×%d != %d×%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled adds s*b to m in place. Dimensions must match.
func (m *Dense) AddScaled(s float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: addScaled dims %d×%d != %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += s * b.data[i]
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns a*b in a fresh matrix.
func Mul(a, b *Dense) *Dense {
	return MulInto(NewDense(a.rows, b.cols, nil), a, b)
}

// MulInto computes a·b into dst and returns dst. dst must be a.rows×b.cols
// and must not alias a or b; its previous contents are overwritten.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: mul dims %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: mul dst dims %d×%d != %d×%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	dst.Zero()
	// ikj loop order for cache friendliness on row-major storage.
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if fp.Zero(aik) {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
	return dst
}

// MulVec returns a·x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	return MulVecInto(make([]float64, a.rows), a, x)
}

// MulVecInto computes a·x into dst (length a.rows) and returns dst. dst
// must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: mulvec dims %d×%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: mulvec dst length %d != %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
	return dst
}

// MulVecT returns aᵀ·x as a new vector.
func MulVecT(a *Dense, x []float64) []float64 {
	return MulVecTInto(make([]float64, a.cols), a, x)
}

// MulVecTInto computes aᵀ·x into dst (length a.cols) and returns dst. dst
// must not alias x; its previous contents are overwritten.
func MulVecTInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: mulvecT dims %d×%d ᵀ· %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.cols {
		panic(fmt.Sprintf("mat: mulvecT dst length %d != %d", len(dst), a.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if fp.Zero(xi) {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot lengths %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if fp.Zero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AxpyVec computes y += s*x in place.
func AxpyVec(s float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy lengths %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: trace of non-square %d×%d", m.rows, m.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// TraceMul returns tr(a·b) without forming the product. a must be r×c and b
// c×r.
func TraceMul(a, b *Dense) float64 {
	if a.cols != b.rows || a.rows != b.cols {
		panic(fmt.Sprintf("mat: traceMul dims %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		for k, v := range arow {
			t += v * b.data[k*b.cols+i]
		}
	}
	return t
}

// SymOuterUpdate computes m += s * x xᵀ for square m.
func (m *Dense) SymOuterUpdate(s float64, x []float64) {
	if m.rows != m.cols || m.rows != len(x) {
		panic("mat: symOuterUpdate dimension mismatch")
	}
	for i, xi := range x {
		row := m.Row(i)
		sxi := s * xi
		for j, xj := range x {
			row[j] += sxi * xj
		}
	}
}

// MaxAbs returns the largest absolute element of m, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .5g", m.At(i, j))
			if j < m.cols-1 {
				b.WriteByte('\t')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
