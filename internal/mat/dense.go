// Package mat implements the dense linear algebra needed by Gaussian
// process regression: row-major matrices, vectors, Cholesky factorization
// with adaptive jitter, incremental Cholesky extension, and triangular
// solves. It is deliberately small — only what the BO stack requires — and
// depends on nothing outside the standard library and the internal/fp
// comparison helpers.
package mat

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"

	"repro/internal/fp"
	"repro/internal/parallel"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed r×c matrix. If data is non-nil it is used as the
// backing slice (it must have length r*c).
func NewDense(r, c int, data []float64) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	if data == nil {
		data = make([]float64, r*c)
	} else if len(data) != r*c {
		panic(fmt.Sprintf("mat: backing slice length %d != %d×%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n, nil)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (r, c int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Data returns the backing slice (row-major).
func (m *Dense) Data() []float64 { return m.data }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// CopyFrom copies the contents of src into m. Dimensions must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.rows != src.rows || m.cols != src.cols {
		panic(fmt.Sprintf("mat: copy dims %d×%d != %d×%d", m.rows, m.cols, src.rows, src.cols))
	}
	copy(m.data, src.data)
}

// Zero sets every element to zero.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Scale multiplies every element by s in place.
func (m *Dense) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// AddScaled adds s*b to m in place. Dimensions must match.
func (m *Dense) AddScaled(s float64, b *Dense) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: addScaled dims %d×%d != %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	for i := range m.data {
		m.data[i] += s * b.data[i]
	}
}

// T returns a newly allocated transpose of m.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows, nil)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns a*b in a fresh matrix.
func Mul(a, b *Dense) *Dense {
	return MulInto(NewDense(a.rows, b.cols, nil), a, b)
}

// Blocking parameters for the large-n product path. Every variant —
// plain ikj, blocked, and the parallel row split — accumulates each
// output element in strictly increasing k with the same fp.Zero skip, so
// all three produce bitwise-identical results and the dispatch below is
// free to pick purely on speed (the golden-trace tests hold either way).
const (
	// mulBlockCrossover is the B-operand element count at or below which
	// MulInto keeps the plain ikj loop: small products are cache-resident
	// and the panel machinery only adds loop overhead.
	mulBlockCrossover = 256 * 256
	// mulPanelK is the number of B rows fused per k-panel sweep. Each
	// destination element is loaded and stored once per panel instead of
	// once per k, cutting dst traffic by the panel height; the adds still
	// land in increasing-k order, so only memory traffic is batched,
	// never arithmetic.
	mulPanelK = 8
	// mulTileJ bounds the column width of a k-panel sweep so the active
	// B panel stays cache-resident: mulPanelK×mulTileJ×8 B = 256 KiB.
	mulTileJ = 4096
	// mulRowChunk is the row-block granularity of the parallel split.
	// The partition depends only on the row count, never on the worker
	// count, and every chunk writes a disjoint destination row range.
	mulRowChunk = 64
)

// MulInto computes a·b into dst and returns dst. dst must be a.rows×b.cols
// and must not alias a or b; its previous contents are overwritten.
//
// Large products (B above mulBlockCrossover elements) run on a k-panel
// blocked kernel, split row-wise across parallel.ForEach workers when
// GOMAXPROCS allows; results are bitwise-identical to the plain loop for
// every shape and worker count.
func MulInto(dst, a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("mat: mul dims %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	if dst.rows != a.rows || dst.cols != b.cols {
		panic(fmt.Sprintf("mat: mul dst dims %d×%d != %d×%d", dst.rows, dst.cols, a.rows, b.cols))
	}
	if b.rows*b.cols <= mulBlockCrossover {
		mulIKJ(dst, a, b)
		return dst
	}
	chunks := (a.rows + mulRowChunk - 1) / mulRowChunk
	workers := runtime.GOMAXPROCS(0)
	if workers == 1 || chunks <= 1 {
		mulBlockedRows(dst, a, b, 0, a.rows)
		return dst
	}
	if err := parallel.ForEach(context.Background(), workers, chunks, func(c int) {
		lo := c * mulRowChunk
		mulBlockedRows(dst, a, b, lo, min(lo+mulRowChunk, a.rows))
	}); err != nil {
		panic(err) // unreachable: the background context is never cancelled
	}
	return dst
}

// mulIKJ is the plain ikj product: cache-friendly on row-major storage
// and the bit-reference for the blocked variants.
func mulIKJ(dst, a, b *Dense) {
	dst.Zero()
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for k := 0; k < a.cols; k++ {
			aik := arow[k]
			if fp.Zero(aik) {
				continue
			}
			brow := b.Row(k)
			for j := range orow {
				orow[j] += aik * brow[j]
			}
		}
	}
}

// mulBlockedRows computes destination rows [lo, hi) of a·b with k-panel
// blocking. For each j-tile it sweeps mulPanelK rows of B at a time,
// loading and storing each destination element once per panel; the
// panel's partial adds are applied in increasing-k order, so every output
// element evaluates the exact floating-point operation DAG of mulIKJ
// (same association order, same fp.Zero skips — a panel containing a
// zero multiplier falls back to the per-k form to skip precisely the
// same terms).
func mulBlockedRows(dst, a, b *Dense, lo, hi int) {
	kk, n := a.cols, b.cols
	for i := lo; i < hi; i++ {
		row := dst.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for jb := 0; jb < n; jb += mulTileJ {
		jmax := min(jb+mulTileJ, n)
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := dst.data[i*n+jb : i*n+jmax]
			k := 0
			for ; k+mulPanelK <= kk; k += mulPanelK {
				ap := arow[k : k+mulPanelK]
				if anyZero(ap) {
					mulScalarK(orow, b, arow, k, k+mulPanelK, jb, jmax)
					continue
				}
				a0, a1, a2, a3 := ap[0], ap[1], ap[2], ap[3]
				a4, a5, a6, a7 := ap[4], ap[5], ap[6], ap[7]
				b0 := b.data[k*n+jb : k*n+jmax]
				b1 := b.data[(k+1)*n+jb : (k+1)*n+jmax]
				b2 := b.data[(k+2)*n+jb : (k+2)*n+jmax]
				b3 := b.data[(k+3)*n+jb : (k+3)*n+jmax]
				b4 := b.data[(k+4)*n+jb : (k+4)*n+jmax]
				b5 := b.data[(k+5)*n+jb : (k+5)*n+jmax]
				b6 := b.data[(k+6)*n+jb : (k+6)*n+jmax]
				b7 := b.data[(k+7)*n+jb : (k+7)*n+jmax]
				b1 = b1[:len(b0)]
				b2 = b2[:len(b0)]
				b3 = b3[:len(b0)]
				b4 = b4[:len(b0)]
				b5 = b5[:len(b0)]
				b6 = b6[:len(b0)]
				b7 = b7[:len(b0)]
				orow = orow[:len(b0)]
				for j, bv := range b0 {
					t := orow[j] + a0*bv
					t += a1 * b1[j]
					t += a2 * b2[j]
					t += a3 * b3[j]
					t += a4 * b4[j]
					t += a5 * b5[j]
					t += a6 * b6[j]
					t += a7 * b7[j]
					orow[j] = t
				}
			}
			if k < kk {
				mulScalarK(orow, b, arow, k, kk, jb, jmax)
			}
		}
	}
}

// mulScalarK applies B rows [k0, k1) to one destination row segment in
// the per-k form — the panel fallback and remainder path, identical to
// the inner loops of mulIKJ.
func mulScalarK(orow []float64, b *Dense, arow []float64, k0, k1, jb, jmax int) {
	n := b.cols
	for k := k0; k < k1; k++ {
		aik := arow[k]
		if fp.Zero(aik) {
			continue
		}
		brow := b.data[k*n+jb : k*n+jmax]
		brow = brow[:len(orow)]
		for j, bv := range brow {
			orow[j] += aik * bv
		}
	}
}

// anyZero reports whether the panel multipliers contain an exact zero,
// which forces the per-k fallback so the fp.Zero skip semantics of the
// plain loop are preserved bit-for-bit.
func anyZero(s []float64) bool {
	for _, v := range s {
		if fp.Zero(v) {
			return true
		}
	}
	return false
}

// MulVec returns a·x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	return MulVecInto(make([]float64, a.rows), a, x)
}

// MulVecInto computes a·x into dst (length a.rows) and returns dst. dst
// must not alias x.
func MulVecInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("mat: mulvec dims %d×%d · %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.rows {
		panic(fmt.Sprintf("mat: mulvec dst length %d != %d", len(dst), a.rows))
	}
	for i := 0; i < a.rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
	return dst
}

// MulVecT returns aᵀ·x as a new vector.
func MulVecT(a *Dense, x []float64) []float64 {
	return MulVecTInto(make([]float64, a.cols), a, x)
}

// MulVecTInto computes aᵀ·x into dst (length a.cols) and returns dst. dst
// must not alias x; its previous contents are overwritten.
func MulVecTInto(dst []float64, a *Dense, x []float64) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("mat: mulvecT dims %d×%d ᵀ· %d", a.rows, a.cols, len(x)))
	}
	if len(dst) != a.cols {
		panic(fmt.Sprintf("mat: mulvecT dst length %d != %d", len(dst), a.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.rows; i++ {
		xi := x[i]
		if fp.Zero(xi) {
			continue
		}
		row := a.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
	return dst
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot lengths %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large components.
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if fp.Zero(v) {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AxpyVec computes y += s*x in place.
func AxpyVec(s float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy lengths %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += s * v
	}
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// CloneVec returns a copy of x.
func CloneVec(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Trace returns the trace of a square matrix.
func (m *Dense) Trace() float64 {
	if m.rows != m.cols {
		panic(fmt.Sprintf("mat: trace of non-square %d×%d", m.rows, m.cols))
	}
	var t float64
	for i := 0; i < m.rows; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// TraceMul returns tr(a·b) without forming the product. a must be r×c and b
// c×r.
func TraceMul(a, b *Dense) float64 {
	if a.cols != b.rows || a.rows != b.cols {
		panic(fmt.Sprintf("mat: traceMul dims %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	var t float64
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		for k, v := range arow {
			t += v * b.data[k*b.cols+i]
		}
	}
	return t
}

// SymOuterUpdate computes m += s * x xᵀ for square m.
func (m *Dense) SymOuterUpdate(s float64, x []float64) {
	if m.rows != m.cols || m.rows != len(x) {
		panic("mat: symOuterUpdate dimension mismatch")
	}
	for i, xi := range x {
		row := m.Row(i)
		sxi := s * xi
		for j, xj := range x {
			row[j] += sxi * xj
		}
	}
}

// MaxAbs returns the largest absolute element of m, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders a small matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .5g", m.At(i, j))
			if j < m.cols-1 {
				b.WriteByte('\t')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
