// Package bnn implements a deep-ensemble "Bayesian" neural network
// surrogate: an ensemble of small MLPs trained from independent
// initializations on bootstrap resamples, whose member disagreement
// provides the epistemic uncertainty that acquisition functions need. It
// is the surrogate family of the authors' companion study (Briffoteaux et
// al. 2020, "Parallel surrogate-assisted optimization: Batched Bayesian
// Neural Network-assisted GA versus q-EGO", the paper's reference [8]) and
// one of the "fast-to-fit surrogates" the paper's §4 recommends: training
// scales linearly in the data set size, unlike the O(n³) exact GP.
//
// Everything — forward pass, backpropagation, Adam — is implemented here
// on the standard library.
package bnn

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fp"
	"repro/internal/mat"
	"repro/internal/rng"
	"repro/internal/surrogate"
)

// Config controls ensemble training.
type Config struct {
	// Lo, Hi are the design-space bounds used for input normalization
	// (required).
	Lo, Hi []float64
	// Hidden is the width of each hidden layer (default 32).
	Hidden int
	// HiddenLayers is the number of hidden layers (default 2).
	HiddenLayers int
	// Members is the ensemble size (default 5).
	Members int
	// Epochs is the number of full passes per member (default 150).
	Epochs int
	// LR is the Adam learning rate (default 0.01).
	LR float64
	// WeightDecay is the L2 regularization factor (default 1e-4).
	WeightDecay float64
	// Batch is the minibatch size (default 32).
	Batch int
	// Bootstrap resamples the training set per member (default true via
	// NoBootstrap = false).
	NoBootstrap bool
	// Seed makes training deterministic.
	Seed uint64
}

func (c *Config) validate() error {
	if len(c.Lo) == 0 || len(c.Lo) != len(c.Hi) {
		return fmt.Errorf("bnn: invalid bounds (%d, %d)", len(c.Lo), len(c.Hi))
	}
	for i := range c.Lo {
		if !(c.Lo[i] < c.Hi[i]) {
			return fmt.Errorf("bnn: bounds[%d] = [%v, %v]", i, c.Lo[i], c.Hi[i])
		}
	}
	return nil
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.Hidden <= 0 {
		d.Hidden = 32
	}
	if d.HiddenLayers <= 0 {
		d.HiddenLayers = 2
	}
	if d.Members <= 0 {
		d.Members = 5
	}
	if d.Epochs <= 0 {
		d.Epochs = 150
	}
	if d.LR <= 0 {
		d.LR = 0.01
	}
	if d.WeightDecay < 0 {
		d.WeightDecay = 0
	} else if fp.Zero(d.WeightDecay) {
		d.WeightDecay = 1e-4
	}
	if d.Batch <= 0 {
		d.Batch = 32
	}
	return d
}

// layer is a dense layer with tanh activation (linear for the output).
type layer struct {
	in, out int
	w       []float64 // out×in, row-major
	b       []float64
	// Adam state.
	mw, vw, mb, vb []float64
}

func newLayer(in, out int, stream *rng.Stream) *layer {
	l := &layer{
		in: in, out: out,
		w:  make([]float64, in*out),
		b:  make([]float64, out),
		mw: make([]float64, in*out),
		vw: make([]float64, in*out),
		mb: make([]float64, out),
		vb: make([]float64, out),
	}
	// Xavier/Glorot initialization.
	scale := math.Sqrt(2.0 / float64(in+out))
	for i := range l.w {
		l.w[i] = scale * stream.Norm()
	}
	return l
}

// mlp is one ensemble member.
type mlp struct {
	layers []*layer
	step   int // Adam timestep
}

func newMLP(dims []int, stream *rng.Stream) *mlp {
	m := &mlp{}
	for i := 0; i+1 < len(dims); i++ {
		m.layers = append(m.layers, newLayer(dims[i], dims[i+1], stream))
	}
	return m
}

// forward runs the network, keeping activations for backprop when acts is
// non-nil. acts[0] is the input; acts[k+1] the output of layer k
// (post-activation).
func (m *mlp) forward(x []float64, acts [][]float64) float64 {
	cur := x
	last := len(m.layers) - 1
	for k, l := range m.layers {
		next := make([]float64, l.out)
		for o := 0; o < l.out; o++ {
			s := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range cur {
				s += row[i] * v
			}
			if k != last {
				s = math.Tanh(s)
			}
			next[o] = s
		}
		if acts != nil {
			acts[k+1] = next
		}
		cur = next
	}
	return cur[0]
}

// trainStep runs backprop + Adam on one minibatch and returns the batch
// MSE loss.
func (m *mlp) trainStep(xs [][]float64, ys []float64, lr, decay float64) float64 {
	nl := len(m.layers)
	// Accumulated gradients.
	gw := make([][]float64, nl)
	gb := make([][]float64, nl)
	for k, l := range m.layers {
		gw[k] = make([]float64, len(l.w))
		gb[k] = make([]float64, len(l.b))
	}
	acts := make([][]float64, nl+1)
	var loss float64
	for idx, x := range xs {
		acts[0] = x
		pred := m.forward(x, acts)
		errv := pred - ys[idx]
		loss += errv * errv
		// Backward.
		delta := []float64{2 * errv / float64(len(xs))}
		for k := nl - 1; k >= 0; k-- {
			l := m.layers[k]
			in := acts[k]
			// Gradients for this layer.
			for o := 0; o < l.out; o++ {
				d := delta[o]
				gb[k][o] += d
				row := gw[k][o*l.in : (o+1)*l.in]
				for i, v := range in {
					row[i] += d * v
				}
			}
			if k == 0 {
				break
			}
			// Propagate delta through the weights and the tanh of the
			// previous layer.
			prev := make([]float64, l.in)
			for i := 0; i < l.in; i++ {
				var s float64
				for o := 0; o < l.out; o++ {
					s += delta[o] * l.w[o*l.in+i]
				}
				a := acts[k][i] // tanh output of layer k-1
				prev[i] = s * (1 - a*a)
			}
			delta = prev
		}
	}
	// Adam update.
	m.step++
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	bc1 := 1 - math.Pow(beta1, float64(m.step))
	bc2 := 1 - math.Pow(beta2, float64(m.step))
	for k, l := range m.layers {
		for i := range l.w {
			g := gw[k][i] + decay*l.w[i]
			l.mw[i] = beta1*l.mw[i] + (1-beta1)*g
			l.vw[i] = beta2*l.vw[i] + (1-beta2)*g*g
			l.w[i] -= lr * (l.mw[i] / bc1) / (math.Sqrt(l.vw[i]/bc2) + eps)
		}
		for i := range l.b {
			g := gb[k][i]
			l.mb[i] = beta1*l.mb[i] + (1-beta1)*g
			l.vb[i] = beta2*l.vb[i] + (1-beta2)*g*g
			l.b[i] -= lr * (l.mb[i] / bc1) / (math.Sqrt(l.vb[i]/bc2) + eps)
		}
	}
	return loss / float64(len(xs))
}

// Ensemble is a trained deep-ensemble surrogate.
type Ensemble struct {
	cfg         Config
	nets        []*mlp
	ymean, ystd float64

	xs [][]float64 // raw training inputs (cloned)
	ys []float64   // raw training outputs
}

// ErrEmptyData is returned when fitting with no observations.
var ErrEmptyData = errors.New("bnn: no training data")

// Fit trains the ensemble on raw-space observations.
func Fit(xs [][]float64, ys []float64, cfg Config) (*Ensemble, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := cfg.withDefaults()
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, ErrEmptyData
	}
	d := len(c.Lo)

	e := &Ensemble{cfg: c}
	e.ymean, e.ystd = meanStd(ys)
	if e.ystd < 1e-12 {
		e.ystd = 1
	}
	// Normalize once.
	nx := make([][]float64, n)
	ny := make([]float64, n)
	for i, x := range xs {
		if len(x) != d {
			return nil, fmt.Errorf("bnn: point %d has dim %d, want %d", i, len(x), d)
		}
		u := make([]float64, d)
		for j := range x {
			u[j] = 2*(x[j]-c.Lo[j])/(c.Hi[j]-c.Lo[j]) - 1
		}
		nx[i] = u
		ny[i] = (ys[i] - e.ymean) / e.ystd
	}

	dims := []int{d}
	for i := 0; i < c.HiddenLayers; i++ {
		dims = append(dims, c.Hidden)
	}
	dims = append(dims, 1)

	master := rng.New(c.Seed, 8080)
	for member := 0; member < c.Members; member++ {
		stream := master.Split(uint64(member))
		net := newMLP(dims, stream)
		// Bootstrap resample (or identity).
		idx := make([]int, n)
		for i := range idx {
			if c.NoBootstrap {
				idx[i] = i
			} else {
				idx[i] = stream.IntN(n)
			}
		}
		for epoch := 0; epoch < c.Epochs; epoch++ {
			stream.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
			for off := 0; off < n; off += c.Batch {
				end := off + c.Batch
				if end > n {
					end = n
				}
				bx := make([][]float64, 0, end-off)
				by := make([]float64, 0, end-off)
				for _, t := range idx[off:end] {
					bx = append(bx, nx[t])
					by = append(by, ny[t])
				}
				net.trainStep(bx, by, c.LR, c.WeightDecay)
			}
		}
		e.nets = append(e.nets, net)
	}
	// Retain the raw data: BestObserved needs it, and Info reports the
	// training fit.
	e.xs = make([][]float64, n)
	for i, x := range xs {
		e.xs[i] = mat.CloneVec(x)
	}
	e.ys = mat.CloneVec(ys)
	return e, nil
}

func meanStd(v []float64) (mean, std float64) {
	n := float64(len(v))
	for _, x := range v {
		mean += x
	}
	mean /= n
	for _, x := range v {
		std += (x - mean) * (x - mean)
	}
	if len(v) > 1 {
		std = math.Sqrt(std / (n - 1))
	}
	return mean, std
}

// forwardGrad runs the network and backpropagates d(output)/d(input),
// reusing the trainStep delta recursion but stopping at the raw input
// (which has no activation).
func (m *mlp) forwardGrad(x []float64) (float64, []float64) {
	nl := len(m.layers)
	acts := make([][]float64, nl+1)
	acts[0] = x
	out := m.forward(x, acts)
	delta := []float64{1}
	for k := nl - 1; k >= 1; k-- {
		l := m.layers[k]
		prev := make([]float64, l.in)
		for i := 0; i < l.in; i++ {
			var s float64
			for o := 0; o < l.out; o++ {
				s += delta[o] * l.w[o*l.in+i]
			}
			a := acts[k][i] // tanh output of layer k-1
			prev[i] = s * (1 - a*a)
		}
		delta = prev
	}
	l0 := m.layers[0]
	g := make([]float64, l0.in)
	for i := 0; i < l0.in; i++ {
		var s float64
		for o := 0; o < l0.out; o++ {
			s += delta[o] * l0.w[o*l0.in+i]
		}
		g[i] = s
	}
	return out, g
}

// Members returns the ensemble size.
func (e *Ensemble) Members() int { return len(e.nets) }

// Predict returns the ensemble predictive mean and the member-disagreement
// standard deviation at a raw-space point.
func (e *Ensemble) Predict(x []float64) (mean, sd float64) {
	d := len(e.cfg.Lo)
	if len(x) != d {
		panic(fmt.Sprintf("bnn: point dim %d != %d", len(x), d))
	}
	u := make([]float64, d)
	for j := range x {
		u[j] = 2*(x[j]-e.cfg.Lo[j])/(e.cfg.Hi[j]-e.cfg.Lo[j]) - 1
	}
	var sum, sumsq float64
	for _, net := range e.nets {
		p := net.forward(u, nil)
		sum += p
		sumsq += p * p
	}
	k := float64(len(e.nets))
	mu := sum / k
	variance := sumsq/k - mu*mu
	if variance < 0 {
		variance = 0
	}
	return e.ymean + e.ystd*mu, e.ystd * math.Sqrt(variance)
}

// normalizeInput maps a raw-space point to [-1,1]^d, the network's input
// convention.
func (e *Ensemble) normalizeInput(x []float64) []float64 {
	d := len(e.cfg.Lo)
	if len(x) != d {
		panic(fmt.Sprintf("bnn: point dim %d != %d", len(x), d))
	}
	u := make([]float64, d)
	for j := range x {
		u[j] = 2*(x[j]-e.cfg.Lo[j])/(e.cfg.Hi[j]-e.cfg.Lo[j]) - 1
	}
	return u
}

// PredictWithGrad returns the ensemble mean and disagreement sd at a
// raw-space point, writing their analytic input gradients into the
// caller-provided dMean and dSD (tanh networks are smooth, so
// backpropagation to the input is exact).
func (e *Ensemble) PredictWithGrad(x []float64, dMean, dSD []float64) (mean, sd float64) {
	d := len(e.cfg.Lo)
	if len(dMean) != d || len(dSD) != d {
		panic(fmt.Sprintf("bnn: gradient buffer lengths %d,%d != %d", len(dMean), len(dSD), d))
	}
	u := e.normalizeInput(x)
	k := float64(len(e.nets))
	var sum, sumsq float64
	dMuU := make([]float64, d)
	dSqU := make([]float64, d) // gradient of avg p², accumulated
	for _, net := range e.nets {
		p, g := net.forwardGrad(u)
		sum += p
		sumsq += p * p
		for j := 0; j < d; j++ {
			dMuU[j] += g[j] / k
			dSqU[j] += 2 * p * g[j] / k
		}
	}
	mu := sum / k
	variance := sumsq/k - mu*mu
	if variance < 1e-300 {
		variance = 1e-300
	}
	sdStd := math.Sqrt(variance)
	for j := 0; j < d; j++ {
		du := 2 / (e.cfg.Hi[j] - e.cfg.Lo[j]) // chain rule u→x
		dVarU := dSqU[j] - 2*mu*dMuU[j]
		dMean[j] = e.ystd * dMuU[j] * du
		dSD[j] = e.ystd * dVarU / (2 * sdStd) * du
	}
	return e.ymean + e.ystd*mu, e.ystd * sdStd
}

// PredictJoint returns the joint posterior over a batch of points, with
// the covariance estimated empirically across ensemble members (the same
// population normalization 1/M that Predict's variance uses). The
// covariance has rank at most M−1, so the factorization relies on the
// jittered Cholesky to shore up the null space.
func (e *Ensemble) PredictJoint(xs [][]float64) (*surrogate.JointPrediction, error) {
	q := len(xs)
	if q == 0 {
		return nil, fmt.Errorf("bnn: PredictJoint: %w", surrogate.ErrEmptyBatch)
	}
	nm := len(e.nets)
	preds := mat.NewDense(nm, q, nil)
	for i, x := range xs {
		u := e.normalizeInput(x)
		for m, net := range e.nets {
			preds.Set(m, i, net.forward(u, nil))
		}
	}
	k := float64(nm)
	mu := make([]float64, q)
	for i := 0; i < q; i++ {
		var s float64
		for m := 0; m < nm; m++ {
			s += preds.At(m, i)
		}
		mu[i] = s / k
	}
	mean := make([]float64, q)
	cov := mat.NewDense(q, q, nil)
	scale := e.ystd * e.ystd
	for i := 0; i < q; i++ {
		mean[i] = e.ymean + e.ystd*mu[i]
		for j := 0; j <= i; j++ {
			var s float64
			for m := 0; m < nm; m++ {
				s += (preds.At(m, i) - mu[i]) * (preds.At(m, j) - mu[j])
			}
			c := scale * s / k
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	ch, err := mat.NewCholesky(cov, 1e-10, 1e-2)
	if err != nil {
		return nil, fmt.Errorf("bnn: joint covariance not PD: %w", err)
	}
	// L materializes a fresh matrix on the packed factor — no Clone needed.
	return &surrogate.JointPrediction{Mean: mean, CovChol: ch.L()}, nil
}

// Fantasize implements surrogate.Surrogate. A deep ensemble has no
// tractable conditioning update short of retraining, so the operation is
// unsupported; Kriging-Believer-style callers keep selecting on the
// unconditioned model.
func (e *Ensemble) Fantasize([]float64, float64) (surrogate.Surrogate, error) {
	return nil, fmt.Errorf("bnn: fantasy conditioning requires retraining: %w", surrogate.ErrUnsupported)
}

// BestObserved returns the index, point and value of the best training
// observation under the given optimization sense.
func (e *Ensemble) BestObserved(minimize bool) (idx int, x []float64, y float64) {
	idx = 0
	y = e.ys[0]
	for i, v := range e.ys {
		if (minimize && v < y) || (!minimize && v > y) {
			idx, y = i, v
		}
	}
	return idx, mat.CloneVec(e.xs[idx]), y
}

// Info implements surrogate.Surrogate. Score is the negative training MSE
// of the ensemble mean in raw output units.
func (e *Ensemble) Info() surrogate.Info {
	var mse float64
	for i, x := range e.xs {
		mu, _ := e.Predict(x)
		d := mu - e.ys[i]
		mse += d * d
	}
	mse /= float64(len(e.ys))
	return surrogate.Info{
		Family: "DeepEnsemble",
		N:      len(e.ys),
		Dim:    len(e.cfg.Lo),
		Score:  -mse,
	}
}

// The ensemble is a full surrogate.
var _ surrogate.Surrogate = (*Ensemble)(nil)
