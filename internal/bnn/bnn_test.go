package bnn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/surrogate"
)

func cfg2d() Config {
	return Config{
		Lo: []float64{-2, -2}, Hi: []float64{2, 2},
		Hidden: 24, HiddenLayers: 2, Members: 3, Epochs: 120, Seed: 1,
	}
}

func quadData(n int, stream *rng.Stream) ([][]float64, []float64) {
	lo, hi := []float64{-2, -2}, []float64{2, 2}
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = stream.UniformVec(lo, hi)
		y[i] = X[i][0]*X[i][0] + 0.5*X[i][1]*X[i][1]
	}
	return X, y
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, nil, cfg2d()); err == nil {
		t.Fatal("expected error for empty data")
	}
	bad := cfg2d()
	bad.Lo = []float64{1, 1}
	bad.Hi = []float64{0, 0}
	if _, err := Fit([][]float64{{0, 0}}, []float64{1}, bad); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
	if _, err := Fit([][]float64{{0}}, []float64{1}, cfg2d()); err == nil {
		t.Fatal("expected error for dim mismatch")
	}
}

func TestEnsembleLearnsQuadratic(t *testing.T) {
	stream := rng.New(2, 2)
	X, y := quadData(150, stream)
	e, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution accuracy.
	var sse, n float64
	for i := 0; i < 50; i++ {
		x := stream.UniformVec([]float64{-1.5, -1.5}, []float64{1.5, 1.5})
		want := x[0]*x[0] + 0.5*x[1]*x[1]
		got, _ := e.Predict(x)
		sse += (got - want) * (got - want)
		n++
	}
	rmse := math.Sqrt(sse / n)
	if rmse > 0.35 {
		t.Fatalf("ensemble RMSE %v too large", rmse)
	}
}

func TestEnsembleUncertaintyStructure(t *testing.T) {
	// Train only on a small central region: disagreement must be larger
	// far outside the data than at the center.
	stream := rng.New(3, 3)
	n := 80
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = stream.UniformVec([]float64{-0.5, -0.5}, []float64{0.5, 0.5})
		y[i] = X[i][0] + X[i][1]
	}
	e, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	_, sdCenter := e.Predict([]float64{0, 0})
	_, sdFar := e.Predict([]float64{1.9, -1.9})
	if sdFar <= sdCenter {
		t.Fatalf("sd far %v <= sd center %v", sdFar, sdCenter)
	}
}

func TestDeterministicTraining(t *testing.T) {
	stream := rng.New(4, 4)
	X, y := quadData(60, stream)
	e1, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	m1, s1 := e1.Predict(x)
	m2, s2 := e2.Predict(x)
	if m1 != m2 || s1 != s2 {
		t.Fatal("training not deterministic for identical seeds")
	}
}

func TestMembersCount(t *testing.T) {
	stream := rng.New(5, 5)
	X, y := quadData(40, stream)
	c := cfg2d()
	c.Members = 4
	e, err := Fit(X, y, c)
	if err != nil {
		t.Fatal(err)
	}
	if e.Members() != 4 {
		t.Fatalf("members = %d", e.Members())
	}
}

func TestConstantTargets(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {-1, 0.5}, {0.2, -0.3}}
	y := []float64{5, 5, 5, 5}
	e, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := e.Predict([]float64{0.5, 0.5})
	if math.Abs(mu-5) > 0.5 {
		t.Fatalf("constant prediction %v, want ≈ 5", mu)
	}
}

func TestPredictDimPanics(t *testing.T) {
	stream := rng.New(6, 6)
	X, y := quadData(30, stream)
	e, err := Fit(X, y, cfg2d())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Predict([]float64{1})
}

func TestTrainingReducesLoss(t *testing.T) {
	// A single member's loss on its own training batch must shrink.
	stream := rng.New(7, 7)
	X, y := quadData(64, stream)
	base := cfg2d()
	c := base.withDefaults()
	net := newMLP([]int{2, 16, 16, 1}, rng.New(8, 8))
	nx := make([][]float64, len(X))
	for i, x := range X {
		u := make([]float64, 2)
		for j := range x {
			u[j] = x[j] / 2
		}
		nx[i] = u
	}
	first := net.trainStep(nx, y, c.LR, 0)
	var last float64
	for i := 0; i < 200; i++ {
		last = net.trainStep(nx, y, c.LR, 0)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestPredictJointEmptyBatch(t *testing.T) {
	stream := rng.New(5, 5)
	X, y := quadData(30, stream)
	c := cfg2d()
	c.Epochs = 5
	e, err := Fit(X, y, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.PredictJoint(nil); !errors.Is(err, surrogate.ErrEmptyBatch) {
		t.Fatalf("bnn.PredictJoint(nil) err = %v, want ErrEmptyBatch", err)
	}
}
