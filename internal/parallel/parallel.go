// Package parallel provides batch-synchronous parallel evaluation of
// expensive black-box functions — the role MPI4Py worker ranks play in the
// paper — together with virtual-time accounting. Evaluations run
// concurrently on goroutines; their *reported* cost is the simulated
// latency of the underlying simulator (10 s for the UPHES black box), so a
// 20-minute experiment replays in seconds of wall time while preserving
// the paper's time bookkeeping exactly: a batch costs the maximum member
// latency plus a parallel-call overhead term.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Evaluator is a black-box objective. Eval returns the objective value and
// the simulated latency of the evaluation (zero for a free function).
type Evaluator interface {
	Eval(x []float64) (y float64, cost time.Duration)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(x []float64) (float64, time.Duration)

// Eval implements Evaluator.
func (f EvaluatorFunc) Eval(x []float64) (float64, time.Duration) { return f(x) }

// FixedCost wraps a plain objective with a constant simulated latency, the
// paper's "fixed time of 10 s for a simulation" convention for benchmark
// functions.
func FixedCost(f func(x []float64) float64, cost time.Duration) Evaluator {
	return EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		return f(x), cost
	})
}

// Pool evaluates batches of candidates concurrently.
type Pool struct {
	// Workers bounds concurrent evaluations; 0 means unbounded for the
	// purposes of virtual-time accounting (one MPI rank per batch member,
	// so the round costs the single slowest evaluation). The number of
	// real goroutines is nevertheless clamped to maxUnboundedGoroutines()
	// so a pathological batch size cannot exhaust the scheduler; the
	// clamp is invisible in BatchResult.Virtual and only bounds physical
	// concurrency.
	Workers int
	// Overhead models the parallel-call overhead the paper attributes to
	// the simulator's RAO interfacing: a function of the batch size added
	// to each batch's virtual duration. Nil means zero overhead.
	Overhead func(q int) time.Duration
}

// BatchResult reports one batch-synchronous evaluation round.
type BatchResult struct {
	// Y holds the objective values aligned with the input batch.
	Y []float64
	// Costs holds the per-member simulated latencies aligned with the
	// input batch. Virtual is derived from them (VirtualDuration); they
	// are reported so ask/tell clients can forward member-level costs and
	// have the session recompute the identical batch time.
	Costs []time.Duration
	// Virtual is the simulated wall time of the round: the maximum member
	// latency plus overhead(q).
	Virtual time.Duration
	// Real is the actual compute time spent evaluating.
	Real time.Duration
}

// EvalBatch evaluates all points of the batch, in parallel, and returns the
// values together with the virtual duration of the round.
//
// Cancellation drains rather than kills: members that have not yet started
// when ctx is cancelled are skipped, members already running finish (a
// black-box simulation cannot be interrupted mid-flight), and EvalBatch
// returns only after every worker goroutine has exited. A non-nil error is
// returned exactly when at least one member went unevaluated; the
// BatchResult is then unusable and callers must discard the batch.
func (p *Pool) EvalBatch(ctx context.Context, ev Evaluator, xs [][]float64) (BatchResult, error) {
	q := len(xs)
	if q == 0 {
		panic("parallel: empty batch")
	}
	//lint:ignore detorder measured wall time is reported, never replayed; Virtual drives scheduling
	start := time.Now()
	ys := make([]float64, q)
	costs := make([]time.Duration, q)
	evaluated := make([]bool, q)

	// ranks is the accounting width (how many members run "at once" in
	// virtual time); spawn is the number of real goroutines. They differ
	// only in the unbounded case, where the rank model stays one-per-member
	// but physical concurrency is clamped.
	ranks := p.Workers
	if ranks <= 0 || ranks > q {
		ranks = q
	}
	spawn := ranks
	if p.Workers <= 0 {
		if ceil := maxUnboundedGoroutines(); spawn > ceil {
			spawn = ceil
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < spawn; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < q; i += spawn {
				if ctx.Err() != nil {
					return // cancelled before this member started
				}
				ys[i], costs[i] = ev.Eval(xs[i])
				evaluated[i] = true
			}
		}(w)
	}
	wg.Wait() // drain: all workers have exited past this point
	for _, ok := range evaluated {
		if !ok {
			return BatchResult{}, fmt.Errorf("parallel: batch abandoned: %w", ctx.Err())
		}
	}

	//lint:ignore detorder measured wall time is reported, never replayed; Virtual drives scheduling
	return BatchResult{Y: ys, Costs: costs, Virtual: p.VirtualDuration(costs), Real: time.Since(start)}, nil
}

// VirtualDuration computes the virtual wall time of one batch-synchronous
// round from the per-member simulated latencies, under this pool's worker
// configuration: the round lasts as long as its slowest member; with fewer
// workers than batch members, rounds serialize in ceil(q/workers) waves of
// the per-wave maximum (wave packing in submission order); the parallel-call
// overhead term is added last. EvalBatch reports exactly this value, and
// ask/tell sessions recompute it from told member costs, so closed-loop and
// inverted runs charge bit-identical evaluation times.
func (p *Pool) VirtualDuration(costs []time.Duration) time.Duration {
	q := len(costs)
	ranks := p.Workers
	if ranks <= 0 || ranks > q {
		ranks = q
	}
	var virtual time.Duration
	if ranks >= q {
		for _, c := range costs {
			if c > virtual {
				virtual = c
			}
		}
	} else {
		for w := 0; w < q; w += ranks {
			end := w + ranks
			if end > q {
				end = q
			}
			var wave time.Duration
			for _, c := range costs[w:end] {
				if c > wave {
					wave = c
				}
			}
			virtual += wave
		}
	}
	if p.Overhead != nil {
		virtual += p.Overhead(q)
	}
	return virtual
}

// maxUnboundedGoroutines is the physical-concurrency ceiling applied when
// Pool.Workers == 0. Black-box evaluations mostly block on simulated
// latency rather than CPU, so the ceiling is generous — max(64,
// 8·GOMAXPROCS) — but finite: a caller handing an unbounded pool a
// million-member batch gets a million virtual ranks, not a million
// goroutines.
func maxUnboundedGoroutines() int {
	return max(64, 8*runtime.GOMAXPROCS(0))
}

// ForEach runs fn(i) for every i in [0,n) on at most workers goroutines
// and returns when all calls have finished. workers <= 0 means one
// goroutine per index. Index assignment is deterministic (worker w takes
// i = w, w+workers, ...), so callers that pre-split rng streams per index
// replay bit-identically regardless of scheduling.
//
// This is the only sanctioned way to spawn goroutines outside this
// package: the godiscipline analyzer (cmd/pbolint) rejects bare go
// statements elsewhere, keeping the batch size q the single parallelism
// knob of the system. fn must write only to per-index state; ForEach
// provides no locking.
//
// Cancelling ctx stops workers between iterations: calls already in fn
// complete, no new indices are dispatched, and ForEach returns ctx.Err().
// A nil error means fn ran for every index.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if ctx.Err() != nil {
					return
				}
				fn(i)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachBand partitions [0,n) into ceil(n/band) contiguous bands of
// width band (the last possibly shorter) and runs fn(lo, hi) for each on
// at most workers goroutines via ForEach. The partition depends only on n
// and band — never on workers or scheduling — which is the deterministic-
// partition half of the bit-identity argument the fit and predict paths
// rely on: a caller whose bands write disjoint output rows produces
// bitwise-identical results for any GOMAXPROCS, and a caller that reduces
// per-band partials in band order gets one fixed association independent
// of the worker count. Cancellation semantics are ForEach's.
func ForEachBand(ctx context.Context, workers, n, band int, fn func(lo, hi int)) error {
	if band <= 0 {
		panic(fmt.Sprintf("parallel: non-positive band width %d", band))
	}
	nb := (n + band - 1) / band
	return ForEach(ctx, workers, nb, func(b int) {
		lo := b * band
		hi := min(lo+band, n)
		fn(lo, hi)
	})
}

// LinearOverhead returns an overhead model base + perEval·q, matching the
// paper's observation that the simulator's interfacing overhead grows with
// the number of parallel calls.
func LinearOverhead(base, perEval time.Duration) func(int) time.Duration {
	return func(q int) time.Duration {
		return base + time.Duration(q)*perEval
	}
}

// CountingEvaluator wraps an Evaluator and counts evaluations; used by
// experiment harnesses to report the paper's #simulations metric.
type CountingEvaluator struct {
	mu    sync.Mutex
	inner Evaluator
	n     int
}

// NewCounting wraps ev.
func NewCounting(ev Evaluator) *CountingEvaluator {
	return &CountingEvaluator{inner: ev}
}

// Eval implements Evaluator.
func (c *CountingEvaluator) Eval(x []float64) (float64, time.Duration) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.inner.Eval(x)
}

// Count returns the number of evaluations so far.
func (c *CountingEvaluator) Count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// String describes the pool configuration.
func (p *Pool) String() string {
	return fmt.Sprintf("parallel.Pool{Workers: %d}", p.Workers)
}
