package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// mustEvalBatch fails the test on a cancellation error; used by the
// happy-path tests that run under context.Background().
func mustEvalBatch(t *testing.T, p *Pool, ev Evaluator, xs [][]float64) BatchResult {
	t.Helper()
	br, err := p.EvalBatch(context.Background(), ev, xs)
	if err != nil {
		t.Fatalf("EvalBatch: %v", err)
	}
	return br
}

func TestEvalBatchValuesAligned(t *testing.T) {
	ev := FixedCost(sum, time.Second)
	p := &Pool{}
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	br := mustEvalBatch(t, p, ev, xs)
	want := []float64{3, 7, 11}
	for i := range want {
		if br.Y[i] != want[i] {
			t.Fatalf("Y = %v, want %v", br.Y, want)
		}
	}
}

func TestEvalBatchVirtualIsMax(t *testing.T) {
	// Cost keyed by the point's first coordinate: the batch's virtual
	// duration is the maximum member cost.
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		return x[0], time.Duration(x[0]) * time.Second
	})
	p := &Pool{}
	br := mustEvalBatch(t, p, ev, [][]float64{{2}, {5}, {1}})
	if br.Virtual != 5*time.Second {
		t.Fatalf("virtual = %v, want 5s", br.Virtual)
	}
}

func TestEvalBatchOverheadAdded(t *testing.T) {
	ev := FixedCost(sum, time.Second)
	p := &Pool{Overhead: LinearOverhead(100*time.Millisecond, 50*time.Millisecond)}
	br := mustEvalBatch(t, p, ev, [][]float64{{1}, {2}, {3}, {4}})
	want := time.Second + 100*time.Millisecond + 4*50*time.Millisecond
	if br.Virtual != want {
		t.Fatalf("virtual = %v, want %v", br.Virtual, want)
	}
}

func TestEvalBatchLimitedWorkersWavePacking(t *testing.T) {
	ev := FixedCost(sum, 10*time.Second)
	p := &Pool{Workers: 2}
	br := mustEvalBatch(t, p, ev, [][]float64{{1}, {2}, {3}, {4}, {5}})
	// 5 evals on 2 workers: 3 waves of 10s.
	if br.Virtual != 30*time.Second {
		t.Fatalf("virtual = %v, want 30s", br.Virtual)
	}
}

func TestEvalBatchEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty batch")
		}
	}()
	if _, err := (&Pool{}).EvalBatch(context.Background(), FixedCost(sum, 0), nil); err != nil {
		t.Fatalf("EvalBatch: %v", err)
	}
}

func TestEvalBatchActuallyConcurrent(t *testing.T) {
	// Real sleep of 30ms × 8 members must complete in well under the
	// serial 240ms when run concurrently.
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		time.Sleep(30 * time.Millisecond)
		return 0, 0
	})
	p := &Pool{}
	start := time.Now()
	mustEvalBatch(t, p, ev, make([][]float64, 8))
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("batch took %v, expected concurrent execution", elapsed)
	}
}

func TestEvalBatchCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := int32(0)
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		atomic.AddInt32(&calls, 1)
		return 0, 0
	})
	_, err := (&Pool{}).EvalBatch(ctx, ev, [][]float64{{1}, {2}})
	if err == nil {
		t.Fatal("expected error from pre-cancelled context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if got := atomic.LoadInt32(&calls); got != 0 {
		t.Fatalf("evaluator ran %d times after cancel", got)
	}
}

func TestEvalBatchCancelMidBatchDrains(t *testing.T) {
	// One worker, four members: cancel while the first member is in
	// flight. The in-flight member completes (drain semantics), later
	// members are skipped, and EvalBatch reports the abandoned batch.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var calls int32
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		if atomic.AddInt32(&calls, 1) == 1 {
			close(started)
			time.Sleep(20 * time.Millisecond)
		}
		return x[0], 0
	})
	p := &Pool{Workers: 1}
	done := make(chan error, 1)
	go func() {
		_, err := p.EvalBatch(ctx, ev, [][]float64{{1}, {2}, {3}, {4}})
		done <- err
	}()
	<-started
	cancel()
	err := <-done
	if err == nil {
		t.Fatal("expected abandoned-batch error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if got := atomic.LoadInt32(&calls); got >= 4 {
		t.Fatalf("all %d members ran despite cancellation", got)
	}
}

func TestCountingEvaluator(t *testing.T) {
	ce := NewCounting(FixedCost(sum, 0))
	p := &Pool{}
	mustEvalBatch(t, p, ce, [][]float64{{1}, {2}})
	mustEvalBatch(t, p, ce, [][]float64{{3}})
	if ce.Count() != 3 {
		t.Fatalf("count = %d", ce.Count())
	}
}

func TestLinearOverhead(t *testing.T) {
	f := LinearOverhead(time.Second, 100*time.Millisecond)
	if f(4) != time.Second+400*time.Millisecond {
		t.Fatalf("overhead(4) = %v", f(4))
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		n := 23
		counts := make([]int32, n)
		if err := ForEach(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		}); err != nil {
			t.Fatalf("ForEach: %v", err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 24
	var cur, peak int32
	if err := ForEach(context.Background(), workers, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	}); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent calls, worker bound is %d", peak, workers)
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	if err := ForEach(context.Background(), 4, 0, func(int) { ran = true }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if err := ForEach(context.Background(), 4, -3, func(int) { ran = true }); err != nil {
		t.Fatalf("ForEach: %v", err)
	}
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestForEachCancelledStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForEach(ctx, 2, 100, func(int) { atomic.AddInt32(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := atomic.LoadInt32(&ran); got != 0 {
		t.Fatalf("fn ran %d times after cancel", got)
	}
}

func TestForEachCancelMidRunSerial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	err := ForEach(ctx, 1, 10, func(i int) {
		ran++
		if i == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 4 {
		t.Fatalf("fn ran %d times, want 4 (indices 0..3)", ran)
	}
}

// TestEvalBatchUnboundedClampsGoroutines: Workers == 0 means one virtual
// MPI rank per batch member for accounting, but the number of real
// goroutines is clamped — a pathological batch must not get a goroutine
// per member. The evaluator tracks its own high-water concurrency mark.
func TestEvalBatchUnboundedClampsGoroutines(t *testing.T) {
	q := 4 * maxUnboundedGoroutines()
	var inFlight, peak atomic.Int64
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		defer inFlight.Add(-1)
		return x[0], time.Duration(int64(x[0])) * time.Millisecond
	})
	xs := make([][]float64, q)
	for i := range xs {
		xs[i] = []float64{float64(i + 1)}
	}
	br := mustEvalBatch(t, &Pool{Workers: 0}, ev, xs)
	if got := int(peak.Load()); got > maxUnboundedGoroutines() {
		t.Fatalf("peak concurrency %d exceeds clamp %d", got, maxUnboundedGoroutines())
	}
	for i := range xs {
		if br.Y[i] != float64(i+1) {
			t.Fatalf("Y[%d] = %v, want %v", i, br.Y[i], float64(i+1))
		}
	}
	// The clamp is invisible in virtual time: unbounded still accounts one
	// rank per member, so the round costs its single slowest evaluation.
	if want := time.Duration(q) * time.Millisecond; br.Virtual != want {
		t.Fatalf("Virtual = %v, want max member cost %v", br.Virtual, want)
	}
}

func TestEvalBatchReportsCosts(t *testing.T) {
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		return x[0], time.Duration(x[0]) * time.Second
	})
	p := &Pool{}
	br := mustEvalBatch(t, p, ev, [][]float64{{2}, {5}, {1}})
	want := []time.Duration{2 * time.Second, 5 * time.Second, time.Second}
	for i := range want {
		if br.Costs[i] != want[i] {
			t.Fatalf("Costs = %v, want %v", br.Costs, want)
		}
	}
}

// TestVirtualDurationMatchesEvalBatch pins the ask/tell contract: a session
// recomputing the batch time from told member costs must land on exactly
// the value EvalBatch reported, for unbounded and wave-packed pools alike.
func TestVirtualDurationMatchesEvalBatch(t *testing.T) {
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		return x[0], time.Duration(x[0]*100) * time.Millisecond
	})
	xs := [][]float64{{7}, {2}, {9}, {4}, {1}, {6}}
	for _, p := range []*Pool{
		{},
		{Workers: 2},
		{Workers: 4, Overhead: LinearOverhead(100*time.Millisecond, 50*time.Millisecond)},
		{Overhead: LinearOverhead(time.Second, 0)},
	} {
		br := mustEvalBatch(t, p, ev, xs)
		if got := p.VirtualDuration(br.Costs); got != br.Virtual {
			t.Fatalf("%v: VirtualDuration = %v, EvalBatch reported %v", p, got, br.Virtual)
		}
	}
}
