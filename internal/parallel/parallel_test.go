package parallel

import (
	"sync/atomic"
	"testing"
	"time"
)

func sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

func TestEvalBatchValuesAligned(t *testing.T) {
	ev := FixedCost(sum, time.Second)
	p := &Pool{}
	xs := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	br := p.EvalBatch(ev, xs)
	want := []float64{3, 7, 11}
	for i := range want {
		if br.Y[i] != want[i] {
			t.Fatalf("Y = %v, want %v", br.Y, want)
		}
	}
}

func TestEvalBatchVirtualIsMax(t *testing.T) {
	// Cost keyed by the point's first coordinate: the batch's virtual
	// duration is the maximum member cost.
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		return x[0], time.Duration(x[0]) * time.Second
	})
	p := &Pool{}
	br := p.EvalBatch(ev, [][]float64{{2}, {5}, {1}})
	if br.Virtual != 5*time.Second {
		t.Fatalf("virtual = %v, want 5s", br.Virtual)
	}
}

func TestEvalBatchOverheadAdded(t *testing.T) {
	ev := FixedCost(sum, time.Second)
	p := &Pool{Overhead: LinearOverhead(100*time.Millisecond, 50*time.Millisecond)}
	br := p.EvalBatch(ev, [][]float64{{1}, {2}, {3}, {4}})
	want := time.Second + 100*time.Millisecond + 4*50*time.Millisecond
	if br.Virtual != want {
		t.Fatalf("virtual = %v, want %v", br.Virtual, want)
	}
}

func TestEvalBatchLimitedWorkersWavePacking(t *testing.T) {
	ev := FixedCost(sum, 10*time.Second)
	p := &Pool{Workers: 2}
	br := p.EvalBatch(ev, [][]float64{{1}, {2}, {3}, {4}, {5}})
	// 5 evals on 2 workers: 3 waves of 10s.
	if br.Virtual != 30*time.Second {
		t.Fatalf("virtual = %v, want 30s", br.Virtual)
	}
}

func TestEvalBatchEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty batch")
		}
	}()
	(&Pool{}).EvalBatch(FixedCost(sum, 0), nil)
}

func TestEvalBatchActuallyConcurrent(t *testing.T) {
	// Real sleep of 30ms × 8 members must complete in well under the
	// serial 240ms when run concurrently.
	ev := EvaluatorFunc(func(x []float64) (float64, time.Duration) {
		time.Sleep(30 * time.Millisecond)
		return 0, 0
	})
	p := &Pool{}
	start := time.Now()
	p.EvalBatch(ev, make([][]float64, 8))
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("batch took %v, expected concurrent execution", elapsed)
	}
}

func TestCountingEvaluator(t *testing.T) {
	ce := NewCounting(FixedCost(sum, 0))
	p := &Pool{}
	p.EvalBatch(ce, [][]float64{{1}, {2}})
	p.EvalBatch(ce, [][]float64{{3}})
	if ce.Count() != 3 {
		t.Fatalf("count = %d", ce.Count())
	}
}

func TestLinearOverhead(t *testing.T) {
	f := LinearOverhead(time.Second, 100*time.Millisecond)
	if f(4) != time.Second+400*time.Millisecond {
		t.Fatalf("overhead(4) = %v", f(4))
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 3, 7, 64} {
		n := 23
		counts := make([]int32, n)
		ForEach(workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 24
	var cur, peak int32
	ForEach(workers, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	if peak > workers {
		t.Fatalf("observed %d concurrent calls, worker bound is %d", peak, workers)
	}
}

func TestForEachEmpty(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}
