// Package fp holds the project's approved floating-point comparison
// helpers. The floatcmp analyzer (cmd/pbolint) forbids raw == and != on
// float operands everywhere else, so every float comparison in the
// codebase names its intent: a tolerance check (Eq, EqTol), an exact
// sentinel or sparsity test (Zero), or deliberate bit-level equality
// (Exact). All helpers are NaN-strict: comparisons involving NaN report
// false.
package fp

import "math"

// DefaultTol is the relative tolerance used by Eq.
const DefaultTol = 1e-12

// Eq reports whether a and b agree to the default relative tolerance.
func Eq(a, b float64) bool { return EqTol(a, b, DefaultTol) }

// EqTol reports |a-b| <= tol·(1+|a|+|b|): absolute near zero, relative
// for large magnitudes. It is false if either operand is NaN and true
// for equal infinities.
func EqTol(a, b, tol float64) bool {
	if a == b { // handles equal infinities, exact hits
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // unequal infinities; Inf vs finite would otherwise pass
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

// Zero reports x == 0 exactly (either sign of zero). Use it for sentinel
// "unset" checks and sparsity skips where only true zero qualifies.
func Zero(x float64) bool { return x == 0 }

// Exact reports a == b bitwise-as-compared (IEEE ==, so -0 == +0 and
// NaN != NaN). It exists so intentional exact equality — incumbent
// identity, replay assertions, degenerate-range guards — is named and
// reviewable instead of hiding behind a raw operator.
func Exact(a, b float64) bool { return a == b }
