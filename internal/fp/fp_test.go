package fp

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-14, true},
		{1, 1 + 1e-9, false},
		{0, 1e-13, true},
		{0, 1e-9, false},
		{1e300, 1e300 * (1 + 1e-14), true},
		{1e300, 1.001e300, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e308, false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1, 1.05, 0.1) {
		t.Error("EqTol(1, 1.05, 0.1) = false, want true")
	}
	if EqTol(1, 1.5, 0.1) {
		t.Error("EqTol(1, 1.5, 0.1) = true, want false")
	}
}

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero should accept both signed zeros")
	}
	if Zero(1e-300) || Zero(math.NaN()) {
		t.Error("Zero accepted a non-zero")
	}
}

func TestExact(t *testing.T) {
	if !Exact(1.5, 1.5) || Exact(1.5, 1.5000001) {
		t.Error("Exact mismatch on plain values")
	}
	if !Exact(0, math.Copysign(0, -1)) {
		t.Error("Exact(-0, +0) = false, want true (IEEE ==)")
	}
	if Exact(math.NaN(), math.NaN()) {
		t.Error("Exact(NaN, NaN) = true, want false")
	}
}
