// Package scenario opens the UPHES workload from the paper's single
// representative day to long operational horizons: a deterministic
// ensemble generator for price/inflow paths, a constrained objective
// wrapping the day simulator, a rolling-horizon (MPC-style) dispatch
// driver that re-optimizes day by day with reservoir state carried
// across days, and a fleet layer that runs one optimization session per
// ensemble member — in-process or against a pboserver — and aggregates
// the revenue distribution.
//
// Everything is seeded: the same GenConfig always produces the same
// ensemble, and each (member, day) pair owns an independent rng stream,
// so any day of any member can be regenerated in isolation (the serving
// tier rebuilds single days without replaying the year). See DESIGN.md
// §13.
package scenario

import (
	"math"

	"repro/internal/fp"
	"repro/internal/rng"
	"repro/internal/uphes"
)

// Stream-index namespaces inside the generator's master seed. Pool
// streams and per-(member,day) streams must never collide: the bases are
// far apart and the member/day packing stays well below the gap.
const (
	poolStreamBase = uint64(1) << 32
	dayStreamBase  = uint64(1) << 33
	seedStreamBase = uint64(1) << 34
)

// GenConfig parameterizes the scenario ensemble. The zero value is not
// usable; call withDefaults via the package entry points, which accept
// zero fields and fill in the documented defaults.
type GenConfig struct {
	// Seed drives every stream of the ensemble.
	Seed uint64 `json:"seed"`
	// Members is the ensemble size (default 8).
	Members int `json:"members"`
	// SeasonalAmp is the relative amplitude of the annual price cycle
	// (default 0.18: winter peaks ~18% above the annual mean level).
	SeasonalAmp float64 `json:"seasonal_amp,omitempty"`
	// WeekendDip is the relative weekend price reduction (default 0.12).
	WeekendDip float64 `json:"weekend_dip,omitempty"`
	// InflowSeasonalAmp is the relative amplitude of the annual inflow
	// cycle (default 0.5: spring inflow 50% above the mean).
	InflowSeasonalAmp float64 `json:"inflow_seasonal_amp,omitempty"`
	// BootstrapPool is the number of residual day-curves resampled into
	// daily price paths (default 32).
	BootstrapPool int `json:"bootstrap_pool,omitempty"`
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Members <= 0 {
		g.Members = 8
	}
	if fp.Zero(g.SeasonalAmp) {
		g.SeasonalAmp = 0.18
	}
	if fp.Zero(g.WeekendDip) {
		g.WeekendDip = 0.12
	}
	if fp.Zero(g.InflowSeasonalAmp) {
		g.InflowSeasonalAmp = 0.5
	}
	if g.BootstrapPool <= 0 {
		g.BootstrapPool = 32
	}
	return g
}

// Generator produces deterministic per-(member, day) realized inputs for
// the rolling-horizon driver: the paper's price shape reshaped by annual
// and weekly cycles and perturbed with bootstrap-resampled AR(1)
// residual curves. Safe for concurrent readers after construction.
type Generator struct {
	cfg  GenConfig
	base uphes.Config
	// pool holds the bootstrap residual curves at quarter-hour
	// resolution, built once from the pool stream namespace.
	pool [][uphes.Steps]float64
}

// NewGenerator builds the generator for a plant/market configuration.
// The base config's market parameters shape the curves; its Seed is
// ignored in favor of gen.Seed.
func NewGenerator(base uphes.Config, gen GenConfig) *Generator {
	cfg := gen.withDefaults()
	g := &Generator{cfg: cfg, base: base, pool: make([][uphes.Steps]float64, cfg.BootstrapPool)}
	for i := range g.pool {
		stream := rng.New(cfg.Seed, poolStreamBase+uint64(i))
		// AR(1) hourly residuals interpolated to quarter hours — the
		// same residual process the Monte-Carlo scenario set uses, so
		// the bootstrap pool is statistically exchangeable with it.
		var hourly [25]float64
		noise := 0.0
		for h := 0; h < 25; h++ {
			noise = 0.7*noise + base.Market.PriceSigma*math.Sqrt(1-0.49)*stream.Norm()
			hourly[h] = noise
		}
		for t := 0; t < uphes.Steps; t++ {
			hf := float64(t) * uphes.StepHours
			h0 := int(hf)
			frac := hf - float64(h0)
			g.pool[i][t] = hourly[h0]*(1-frac) + hourly[h0+1]*frac
		}
	}
	return g
}

// Config returns the defaulted generator configuration.
func (g *Generator) Config() GenConfig { return g.cfg }

// seasonalPrice is the annual price level factor for calendar day d:
// peak around mid-January (day 15), trough in July.
func (g *Generator) seasonalPrice(day int) float64 {
	return 1 + g.cfg.SeasonalAmp*math.Cos(2*math.Pi*float64(day-15)/365)
}

// seasonalInflow is the annual inflow factor: peak in spring (day ~80).
func (g *Generator) seasonalInflow(day int) float64 {
	f := 1 + g.cfg.InflowSeasonalAmp*math.Sin(2*math.Pi*float64(day-80+91)/365)
	if f < 0 {
		return 0
	}
	return f
}

// weekday is the weekly price factor: days 5 and 6 of each week are the
// weekend (day 0 is a Monday by convention).
func (g *Generator) weekday(day int) float64 {
	if day%7 >= 5 {
		return 1 - g.cfg.WeekendDip
	}
	return 1
}

// dayStream returns the independent stream owning all randomness of one
// (member, day) cell. Days are regenerable in isolation: the rolling
// driver re-reads day d in every horizon window that covers it and gets
// identical inputs each time.
func (g *Generator) dayStream(member, day int) *rng.Stream {
	return rng.New(g.cfg.Seed, dayStreamBase+uint64(member)<<16+uint64(day))
}

// Day generates the realized inputs of one calendar day for one ensemble
// member.
func (g *Generator) Day(member, day int) uphes.DayInput {
	stream := g.dayStream(member, day)
	var in uphes.DayInput
	curve := &g.pool[stream.IntN(len(g.pool))]
	level := g.seasonalPrice(day) * g.weekday(day)
	for t := 0; t < uphes.Steps; t++ {
		price := uphes.BasePrice(&g.base.Market, float64(t)*uphes.StepHours)*level + curve[t]
		if price < 1 {
			price = 1
		}
		in.Price[t] = price
	}
	in.Inflow = g.base.Plant.InflowMean*g.seasonalInflow(day) +
		g.base.Plant.InflowSigma*stream.Norm()
	if in.Inflow < 0 {
		in.Inflow = 0
	}
	for r := 0; r < uphes.ReserveSlots; r++ {
		if stream.Float64() < g.base.Market.ReserveActivationProb {
			in.Activated[r] = 0.3 + 0.7*stream.Float64()
		}
	}
	return in
}

// Days generates n consecutive days starting at day for one member — the
// horizon window the rolling driver optimizes over.
func (g *Generator) Days(member, day, n int) []uphes.DayInput {
	out := make([]uphes.DayInput, n)
	for i := range out {
		out[i] = g.Day(member, day+i)
	}
	return out
}

// DerivedSeed maps a fleet master seed and a (member, day) cell to the
// engine seed of that day's optimization run, so every day of every
// member is an independent yet reproducible BO run.
func DerivedSeed(seed uint64, member, day int) uint64 {
	return rng.New(seed, seedStreamBase+uint64(member)<<16+uint64(day)).Uint64()
}
