package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/acq"
	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/rng"
	"repro/internal/surrogate"
)

// ConstrainedFactory is a core.ModelFactory that fits two GPs per cycle:
// the objective GP on the told profits (the default factory's exact
// Fit/Refit/WithData schedule) and a violation GP on the deterministic
// constraint-excess labels of the same points. The returned surrogate
// wraps the objective model and exposes the violation model through
// acq.FeasibilityProvider, which is how every acquisition strategy
// becomes constraint-aware without code changes (aphBO-2GP-3B's
// probability-of-feasibility multiplier; see acq.Weighted).
type ConstrainedFactory struct {
	// Cons supplies the violation labels; its cache makes the per-cycle
	// relabeling a map lookup for every point the pool evaluated.
	Cons *Constrained
	// ObjCfg and VioCfg configure the two GPs.
	ObjCfg, VioCfg gp.Config
	// RefitEvery re-optimizes hyperparameters every k-th cycle (default
	// 3, matching core's default model schedule).
	RefitEvery int

	obj *gp.GP
	vio *gp.GP
}

// NewConstrainedFactory builds the factory for a horizon problem. The
// violation GP reuses the objective configuration except for its own
// derived seed, so the two fits draw independent streams.
func NewConstrainedFactory(cons *Constrained, cfg gp.Config, refitEvery int) *ConstrainedFactory {
	vio := cfg
	vio.Seed = cfg.Seed ^ 0x9e3779b97f4a7c15
	if refitEvery <= 0 {
		refitEvery = 3
	}
	return &ConstrainedFactory{Cons: cons, ObjCfg: cfg, VioCfg: vio, RefitEvery: refitEvery}
}

// fitOne runs the default factory's schedule on one (model, labels)
// pair.
func fitOne(prev *gp.GP, cfg gp.Config, refitEvery, cycle int, xs [][]float64, ys []float64) (*gp.GP, error) {
	switch {
	case prev == nil:
		return gp.Fit(xs, ys, cfg)
	case (cycle-1)%refitEvery == 0:
		return gp.Refit(prev, xs, ys)
	default:
		return gp.WithData(prev, xs, ys)
	}
}

// Fit implements core.ModelFactory.
func (f *ConstrainedFactory) Fit(ctx context.Context, st *core.State, cycle int) (surrogate.Surrogate, error) {
	obj, err := fitOne(f.obj, f.ObjCfg, f.RefitEvery, cycle, st.X, st.Y)
	if err != nil {
		return nil, fmt.Errorf("scenario: objective fit: %w", err)
	}
	vys := make([]float64, len(st.X))
	for i, x := range st.X {
		vys[i] = f.Cons.Violation(x)
	}
	vio, err := fitOne(f.vio, f.VioCfg, f.RefitEvery, cycle, st.X, vys)
	if err != nil {
		return nil, fmt.Errorf("scenario: violation fit: %w", err)
	}
	f.obj, f.vio = obj, vio
	return &constrainedSurrogate{Surrogate: obj, pof: &pofModel{g: vio}}, nil
}

// constrainedFactoryState is the serialized warm-start state of both
// GPs, mirroring the default factory's checkpoint contract.
type constrainedFactoryState struct {
	Obj *gp.HyperState `json:"obj,omitempty"`
	Vio *gp.HyperState `json:"vio,omitempty"`
}

// FactoryState implements core.FactoryCheckpointer.
func (f *ConstrainedFactory) FactoryState() ([]byte, error) {
	var s constrainedFactoryState
	if f.obj != nil {
		s.Obj = f.obj.HyperState()
	}
	if f.vio != nil {
		s.Vio = f.vio.HyperState()
	}
	return json.Marshal(&s)
}

// RestoreFactoryState implements core.FactoryCheckpointer: the restored
// models are hyperparameter donors for the next Refit/WithData, which is
// the factory's only use of them.
func (f *ConstrainedFactory) RestoreFactoryState(data []byte) error {
	var s constrainedFactoryState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("scenario factory state: %w", err)
	}
	f.obj, f.vio = nil, nil
	if s.Obj != nil {
		m, err := gp.RestoreHyperDonor(s.Obj)
		if err != nil {
			return fmt.Errorf("scenario factory state: %w", err)
		}
		f.obj = m
	}
	if s.Vio != nil {
		m, err := gp.RestoreHyperDonor(s.Vio)
		if err != nil {
			return fmt.Errorf("scenario factory state: %w", err)
		}
		f.vio = m
	}
	return nil
}

// constrainedSurrogate is the composite the factory hands the engine:
// all posterior queries delegate to the objective GP, and the violation
// model rides along as the acq.FeasibilityProvider capability. Fantasize
// rewraps, so Kriging-Believer fantasy chains and the asynchronous
// busy-point conditioning keep the feasibility weighting all the way
// down.
type constrainedSurrogate struct {
	surrogate.Surrogate
	pof *pofModel
}

// Fantasize implements surrogate.Surrogate, preserving the constraint
// capability on the conditioned model.
func (c *constrainedSurrogate) Fantasize(x []float64, y float64) (surrogate.Surrogate, error) {
	base, err := c.Surrogate.Fantasize(x, y)
	if err != nil {
		return nil, err
	}
	return &constrainedSurrogate{Surrogate: base, pof: c.pof}, nil
}

// Feasibility implements acq.FeasibilityProvider.
func (c *constrainedSurrogate) Feasibility() acq.FeasibilityModel { return c.pof }

// pofSDFloor keeps the feasibility probability finite where the
// violation GP is certain: without it, PoF collapses to a hard 0/1 step
// and its gradient to spikes, which starves the inner optimizer.
const pofSDFloor = 1e-9

// pofModel turns the violation GP's posterior into a probability of
// feasibility: PoF(x) = Φ((0 − μ(x)) / σ(x)), the probability that the
// latent violation is non-positive. Safe for concurrent readers.
type pofModel struct {
	g *gp.GP
}

// PoF implements acq.FeasibilityModel.
func (p *pofModel) PoF(x []float64) float64 {
	mu, sd := p.g.Predict(x)
	if sd < pofSDFloor {
		sd = pofSDFloor
	}
	return rng.NormCDF(-mu / sd)
}

// PoFWithGrad implements acq.FeasibilityModel:
// ∇Φ(z) = φ(z)·∇z with z = −μ/σ and ∇z = (−∇μ·σ + μ·∇σ)/σ².
func (p *pofModel) PoFWithGrad(x, grad []float64) float64 {
	d := len(x)
	dMu := make([]float64, d)
	dSD := make([]float64, d)
	mu, sd := p.g.PredictWithGrad(x, dMu, dSD)
	if sd < pofSDFloor {
		sd = pofSDFloor
	}
	z := -mu / sd
	pdf := rng.NormPDF(z)
	inv2 := 1 / (sd * sd)
	for j := 0; j < d; j++ {
		grad[j] = pdf * (-dMu[j]*sd + mu*dSD[j]) * inv2
	}
	return rng.NormCDF(z)
}

// horizonBudget is the virtual budget of one rolling-horizon day run:
// effectively unbounded, so MaxCycles (not elapsed time) terminates the
// run and measured fit/acquisition times can never change how many
// cycles a day gets — the property that makes year schedules replay
// bit-identically across machines.
const horizonBudget = math.MaxInt64 / 4
