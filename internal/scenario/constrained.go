package scenario

import (
	"encoding/binary"
	"math"
	"sync"
	"time"

	"repro/internal/fp"
	"repro/internal/uphes"
)

// boundaryEps is the slack under which a constraint is considered
// satisfied: violations are strict excesses beyond the bound, so a
// reservoir sitting exactly on a bound (the day-boundary carry case) is
// feasible, not an infinitesimal violation.
const boundaryEps = 1e-9

// switchScale converts excess mode switches (a count) into the fill-
// fraction units the other violation terms use, keeping the aggregate
// violation magnitude comparable across constraint families.
const switchScale = 0.1

// ConstraintConfig bounds the plant operation the optimizer may commit.
// Zero fields select the documented defaults.
type ConstraintConfig struct {
	// MinFill and MaxFill bound both reservoirs' fill fraction at every
	// step of the day (defaults 0.05 and 0.98): never drain a basin to
	// the dead zone, never run one to the brim.
	MinFill float64 `json:"min_fill,omitempty"`
	MaxFill float64 `json:"max_fill,omitempty"`
	// MaxSwitchesPerDay caps pump↔turbine reversals per day (default 6)
	// — the machine-wear limit.
	MaxSwitchesPerDay int `json:"max_switches_per_day,omitempty"`
	// EndFillBand bounds how far the upper reservoir's end-of-horizon
	// fill may drift from its start-of-horizon fill (default 0.2),
	// keeping the myopic horizon from strip-mining the stored water.
	EndFillBand float64 `json:"end_fill_band,omitempty"`
}

func (c ConstraintConfig) withDefaults() ConstraintConfig {
	if fp.Zero(c.MinFill) {
		c.MinFill = 0.05
	}
	if fp.Zero(c.MaxFill) {
		c.MaxFill = 0.98
	}
	if c.MaxSwitchesPerDay == 0 {
		c.MaxSwitchesPerDay = 6
	}
	if fp.Zero(c.EndFillBand) {
		c.EndFillBand = 0.2
	}
	return c
}

// excess returns the strict constraint excess of v beyond bound in the
// given direction, with the boundary itself (and boundaryEps around it)
// feasible.
func excess(v, bound float64, above bool) float64 {
	var e float64
	if above {
		e = v - bound
	} else {
		e = bound - v
	}
	if e <= boundaryEps {
		return 0
	}
	return e
}

// evalRec caches one horizon simulation: the total profit and the
// aggregate constraint violation of the decision vector.
type evalRec struct {
	profit    float64
	violation float64
}

// Constrained is the horizon objective of one (member, day) cell: it
// simulates Horizon consecutive days from the carried reservoir state
// under the member's realized inputs, sums the profits, and measures the
// constraint violations the unconstrained simulator only prices softly.
// It implements parallel.Evaluator (the profit is the objective) and
// exposes Violation for the constraint surrogate's training labels.
// Evaluations are cached, so the factory's violation lookups never
// re-simulate points the pool already evaluated. Safe for concurrent
// use.
type Constrained struct {
	// Sim is the day simulator.
	Sim *uphes.Simulator
	// Inputs are the horizon's realized days, index 0 = the committed
	// day.
	Inputs []uphes.DayInput
	// Start is the reservoir state carried into the horizon.
	Start uphes.PlantState
	// Cons is the defaulted constraint configuration.
	Cons ConstraintConfig
	// Latency is the simulated per-evaluation cost.
	Latency time.Duration

	mu    sync.Mutex
	cache map[string]evalRec
}

// key packs a decision vector into a map key by exact bit pattern, so
// the cache distinguishes -0 from +0 and never rounds.
func key(x []float64) string {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return string(b)
}

// run simulates the horizon once and caches the result.
func (c *Constrained) run(x []float64) evalRec {
	k := key(x)
	c.mu.Lock()
	if rec, ok := c.cache[k]; ok {
		c.mu.Unlock()
		return rec
	}
	c.mu.Unlock()

	h := len(c.Inputs)
	state := c.Start
	startFill := state.UpperV / c.Sim.Config().Plant.UpperVolumeMax
	var rec evalRec
	for i := 0; i < h; i++ {
		b, next, dm := c.Sim.SimulateDay(x[i*uphes.Dim:(i+1)*uphes.Dim], state, &c.Inputs[i])
		rec.profit += b.Profit
		rec.violation += c.dayViolation(&dm)
		state = next
	}
	endFill := state.UpperV / c.Sim.Config().Plant.UpperVolumeMax
	rec.violation += excess(math.Abs(endFill-startFill), c.Cons.EndFillBand, true)

	c.mu.Lock()
	if c.cache == nil {
		c.cache = make(map[string]evalRec)
	}
	c.cache[k] = rec
	c.mu.Unlock()
	return rec
}

// dayViolation aggregates one day's constraint excesses from its
// operational metrics.
func (c *Constrained) dayViolation(dm *uphes.DayMetrics) float64 {
	v := excess(dm.MinUpperFill, c.Cons.MinFill, false)
	v += excess(dm.MaxUpperFill, c.Cons.MaxFill, true)
	v += excess(dm.MinLowerFill, c.Cons.MinFill, false)
	v += excess(dm.MaxLowerFill, c.Cons.MaxFill, true)
	if ex := dm.Switches - c.Cons.MaxSwitchesPerDay; ex > 0 {
		v += switchScale * float64(ex)
	}
	return v
}

// Eval implements parallel.Evaluator: the horizon profit with the
// configured simulated latency.
func (c *Constrained) Eval(x []float64) (float64, time.Duration) {
	return c.run(x).profit, c.Latency
}

// Violation returns the aggregate constraint violation of x: 0 when
// every constraint holds, otherwise the summed strict excesses. It is
// the training label of the constraint surrogate and the rolling
// driver's commit gate.
func (c *Constrained) Violation(x []float64) float64 {
	return c.run(x).violation
}

// Feasible reports whether x satisfies every constraint.
func (c *Constrained) Feasible(x []float64) bool {
	return fp.Zero(c.run(x).violation)
}
