package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/parallel"
)

// FleetConfig describes a whole ensemble run: the scenario ensemble, the
// constraints, the rolling-horizon geometry, the per-day optimizer
// configuration and the member-level parallelism.
type FleetConfig struct {
	// Gen is the ensemble (Gen.Members sessions run).
	Gen GenConfig `json:"gen"`
	// Cons constrains every committed day.
	Cons ConstraintConfig `json:"constraints"`
	// Days is the number of operational days rolled per member.
	Days int `json:"days"`
	// Horizon is the look-ahead window of each day's optimization
	// (default 1).
	Horizon int `json:"horizon"`
	// Opt configures each day's BO run (Opt.Seed is the fleet master
	// seed).
	Opt OptConfig `json:"opt"`
	// SimLatency is the simulated per-evaluation latency (default 10s).
	SimLatency time.Duration `json:"sim_latency_ns,omitempty"`
	// Parallel caps concurrently running members (default 1: serial).
	// Members are independent runs, so any level of parallelism yields
	// the same report.
	Parallel int `json:"parallel,omitempty"`
}

func (c FleetConfig) withDefaults() FleetConfig {
	c.Gen = c.Gen.withDefaults()
	c.Cons = c.Cons.withDefaults()
	c.Opt = c.Opt.withDefaults()
	if c.Days <= 0 {
		c.Days = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 1
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	return c
}

// Fleet runs one rolling-horizon session per ensemble member and
// aggregates the revenue distribution. The runner decides where the
// optimization happens: in-process (LocalRunner) or on a pboserver
// (serve.FleetRunner), which is what lets a year-long fleet survive
// process restarts — the fleet re-derives every cell deterministically
// and the server carries the in-flight state.
type Fleet struct {
	Cfg    FleetConfig
	Runner DayRunner
}

// Percentiles summarizes the member revenue distribution with linearly
// interpolated percentiles.
type Percentiles struct {
	P5  float64 `json:"p5"`
	P25 float64 `json:"p25"`
	P50 float64 `json:"p50"`
	P75 float64 `json:"p75"`
	P95 float64 `json:"p95"`
}

// Report is a fleet run's aggregate outcome.
type Report struct {
	Members int `json:"members"`
	Days    int `json:"days"`
	Horizon int `json:"horizon"`
	// Revenues holds per-member total revenue in member order.
	Revenues []float64 `json:"revenues"`
	// Mean is the ensemble-average revenue.
	Mean float64 `json:"mean"`
	// Pct is the revenue distribution summary.
	Pct Percentiles `json:"percentiles"`
	// ViolatingDays and Fallbacks sum over all members.
	ViolatingDays int `json:"violating_days"`
	Fallbacks     int `json:"fallbacks"`
	// PerMember carries the full day-by-day trajectories.
	PerMember []*MemberResult `json:"per_member"`
}

// percentile returns the p-quantile (p in [0, 100]) of sorted values by
// linear interpolation between order statistics.
func percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	pos := p / 100 * float64(n-1)
	i := int(pos)
	if i >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// Run executes the fleet: members run under the configured parallelism
// cap (via the sanctioned parallel.ForEach, deterministic assignment),
// then the report aggregates in member order — the report is
// bit-identical regardless of Parallel.
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	cfg := f.Cfg.withDefaults()
	if f.Runner == nil {
		f.Runner = LocalRunner{}
	}
	n := cfg.Gen.Members
	results := make([]*MemberResult, n)
	errs := make([]error, n)
	if err := parallel.ForEach(ctx, cfg.Parallel, n, func(m int) {
		results[m], errs[m] = RunMember(ctx, f.Runner, cfg.Gen, cfg.Cons, cfg.Opt,
			m, cfg.Days, cfg.Horizon, cfg.SimLatency)
	}); err != nil {
		return nil, err
	}
	for m, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: fleet member %d: %w", m, err)
		}
	}

	rep := &Report{
		Members:   n,
		Days:      cfg.Days,
		Horizon:   cfg.Horizon,
		Revenues:  make([]float64, n),
		PerMember: results,
	}
	for m, mr := range results {
		rep.Revenues[m] = mr.Revenue
		rep.Mean += mr.Revenue
		rep.ViolatingDays += mr.ViolatingDays
		rep.Fallbacks += mr.Fallbacks
	}
	rep.Mean /= float64(n)
	sorted := append([]float64(nil), rep.Revenues...)
	sort.Float64s(sorted)
	rep.Pct = Percentiles{
		P5:  percentile(sorted, 5),
		P25: percentile(sorted, 25),
		P50: percentile(sorted, 50),
		P75: percentile(sorted, 75),
		P95: percentile(sorted, 95),
	}
	return rep, nil
}

// WriteJSON writes the full report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders the human-readable revenue-distribution table the
// uphes-fleet CLI prints.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: %d members × %d days (horizon %d)\n", r.Members, r.Days, r.Horizon)
	fmt.Fprintf(&b, "revenue [EUR]:  mean %12.2f\n", r.Mean)
	fmt.Fprintf(&b, "  P5  %12.2f\n", r.Pct.P5)
	fmt.Fprintf(&b, "  P25 %12.2f\n", r.Pct.P25)
	fmt.Fprintf(&b, "  P50 %12.2f\n", r.Pct.P50)
	fmt.Fprintf(&b, "  P75 %12.2f\n", r.Pct.P75)
	fmt.Fprintf(&b, "  P95 %12.2f\n", r.Pct.P95)
	fmt.Fprintf(&b, "violating days: %d   fallback days: %d\n", r.ViolatingDays, r.Fallbacks)
	return b.String()
}
