package scenario

import (
	"context"
	"testing"
	"time"

	"repro/internal/fp"
	"repro/internal/uphes"
)

func testGen(seed uint64, members int) *Generator {
	base := uphes.DefaultConfig()
	base.Seed = seed
	return NewGenerator(base, GenConfig{Seed: seed, Members: members})
}

func sameDay(a, b *uphes.DayInput) bool {
	if !fp.Exact(a.Inflow, b.Inflow) || a.Activated != b.Activated {
		return false
	}
	for t := range a.Price {
		if !fp.Exact(a.Price[t], b.Price[t]) {
			return false
		}
	}
	return true
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := testGen(7, 4)
	g2 := testGen(7, 4)
	for m := 0; m < 4; m++ {
		for _, d := range []int{0, 1, 6, 180, 364} {
			a, b := g1.Day(m, d), g2.Day(m, d)
			if !sameDay(&a, &b) {
				t.Fatalf("member %d day %d differs across identically-seeded generators", m, d)
			}
		}
	}
	// Each (member, day) cell is regenerable in isolation: a horizon
	// window re-requests the same day and must see the same inputs —
	// otherwise the rolling-horizon driver would optimize against a
	// different tomorrow than it later commits.
	win := g1.Days(2, 10, 3)
	for i := range win {
		solo := g1.Day(2, 10+i)
		if !sameDay(&win[i], &solo) {
			t.Fatalf("day %d differs between window and isolated generation", 10+i)
		}
	}
}

func TestGeneratorVariation(t *testing.T) {
	g := testGen(7, 4)
	a, b := g.Day(0, 10), g.Day(1, 10)
	if sameDay(&a, &b) {
		t.Fatal("distinct members drew identical days")
	}
	c := g.Day(0, 11)
	if sameDay(&a, &c) {
		t.Fatal("consecutive days are identical")
	}
	other := testGen(8, 4)
	d := other.Day(0, 10)
	if sameDay(&a, &d) {
		t.Fatal("distinct seeds drew identical days")
	}
	// Seasonal shaping: a mid-summer day prices below a mid-winter day
	// on average (the cosine peaks in January).
	mean := func(in *uphes.DayInput) float64 {
		s := 0.0
		for _, p := range in.Price {
			s += p
		}
		return s / float64(len(in.Price))
	}
	winter, summer := 0.0, 0.0
	for m := 0; m < 4; m++ {
		w, s := g.Day(m, 15), g.Day(m, 196)
		winter += mean(&w)
		summer += mean(&s)
	}
	if summer >= winter {
		t.Fatalf("seasonal shaping inverted: summer mean %v ≥ winter mean %v", summer/4, winter/4)
	}
}

func TestDerivedSeedSeparates(t *testing.T) {
	seen := map[uint64]bool{}
	for m := 0; m < 8; m++ {
		for d := 0; d < 8; d++ {
			s := DerivedSeed(3, m, d)
			if seen[s] {
				t.Fatalf("derived seed collision at member %d day %d", m, d)
			}
			seen[s] = true
		}
	}
	if DerivedSeed(3, 1, 2) != DerivedSeed(3, 1, 2) {
		t.Fatal("DerivedSeed is not a pure function")
	}
}

// TestConstrainedBoundary pins the day-boundary feasibility contract: a
// reservoir state exactly at a fill bound is feasible — the rolling
// horizon may legitimately hand a day a reservoir sitting on its limit,
// and the constraint layer must not reject the handoff itself.
func TestConstrainedBoundary(t *testing.T) {
	spec := &DaySpec{
		Gen:     GenConfig{Seed: 5, Members: 1},
		Member:  0,
		Day:     0,
		Horizon: 1,
	}
	_, cons, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Start exactly at the minimum-fill bound of both basins.
	base := uphes.DefaultConfig()
	plant := &base.Plant
	cons.Start = uphes.PlantState{
		UpperV: cons.Cons.MinFill * plant.UpperVolumeMax,
		LowerV: cons.Cons.MinFill * plant.LowerVolumeMax,
	}
	idle := make([]float64, uphes.Dim)
	v := cons.Violation(idle)
	if !fp.Zero(v) {
		t.Fatalf("idle day starting exactly on the fill bound violates by %v", v)
	}
	if !cons.Feasible(idle) {
		t.Fatal("boundary start not feasible")
	}
	// Sanity: an aggressive schedule from an empty upper basin does
	// violate (turbining water that is not there).
	cons.Start = uphes.PlantState{UpperV: 0, LowerV: plant.LowerVolumeMax / 2}
	hard := make([]float64, uphes.Dim)
	for i := 0; i < uphes.EnergySlots; i++ {
		hard[i] = 8 // turbine flat out all day
	}
	if cons.Feasible(hard) {
		t.Fatal("draining an empty upper basin reported feasible")
	}
}

func TestConstrainedEvalCachesAndCharges(t *testing.T) {
	spec := &DaySpec{Gen: GenConfig{Seed: 5, Members: 1}, Horizon: 2}
	_, cons, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	cons.Latency = 42 * time.Second
	x := make([]float64, 2*uphes.Dim)
	x[0] = -3
	y1, c1 := cons.Eval(x)
	y2, c2 := cons.Eval(x)
	if !fp.Exact(y1, y2) || c1 != c2 || c1 != 42*time.Second {
		t.Fatalf("cached eval diverged: (%v,%v) vs (%v,%v)", y1, c1, y2, c2)
	}
	if !fp.Exact(cons.Violation(x), cons.Violation(x)) {
		t.Fatal("violation not stable")
	}
}

// TestScenarioGoldenTraceDeterminism is the rolling-horizon golden-trace
// gate (registered in scripts/check.sh's -race run): two identically
// seeded local fleet runs must produce bit-identical committed schedules,
// revenues and reservoir trajectories.
func TestScenarioGoldenTraceDeterminism(t *testing.T) {
	cfg := FleetConfig{
		Gen:      GenConfig{Seed: 11, Members: 2},
		Days:     3,
		Horizon:  2,
		Opt:      scenarioTestOpt(),
		Parallel: 2,
	}
	run := func() *Report {
		rep, err := (&Fleet{Cfg: cfg, Runner: LocalRunner{}}).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if len(a.PerMember) != len(b.PerMember) {
		t.Fatal("member count differs")
	}
	for m := range a.PerMember {
		am, bm := a.PerMember[m], b.PerMember[m]
		if !fp.Exact(am.Revenue, bm.Revenue) {
			t.Fatalf("member %d revenue %v vs %v", m, am.Revenue, bm.Revenue)
		}
		if am.EndState != bm.EndState {
			t.Fatalf("member %d end state differs", m)
		}
		for d := range am.Days {
			ad, bd := am.Days[d], bm.Days[d]
			if !fp.Exact(ad.Profit, bd.Profit) || !fp.Exact(ad.BestY, bd.BestY) {
				t.Fatalf("member %d day %d profit/best differ", m, d)
			}
			for j := range ad.X {
				if !fp.Exact(ad.X[j], bd.X[j]) {
					t.Fatalf("member %d day %d schedule differs at %d", m, d, j)
				}
			}
		}
	}
	for i := range a.Revenues {
		if !fp.Exact(a.Revenues[i], b.Revenues[i]) {
			t.Fatal("revenue distribution differs between runs")
		}
	}
	if !fp.Exact(a.Mean, b.Mean) || !fp.Exact(a.Pct.P50, b.Pct.P50) {
		t.Fatal("summary statistics differ between runs")
	}
}

// scenarioTestOpt keeps per-day optimization cheap enough for the race
// gate while still exercising init design, model fits and acquisition.
func scenarioTestOpt() OptConfig {
	return OptConfig{
		Strategy:    "mic-q-EGO",
		BatchSize:   2,
		InitSamples: 4,
		MaxCycles:   2,
		MaxIter:     5,
		Restarts:    1,
		Seed:        11,
	}
}

// TestFleetZeroViolatingDays is the acceptance property on the local
// path: feasibility-weighted acquisition plus the feasible-commit rule
// yields no committed constraint-violating days.
func TestFleetZeroViolatingDays(t *testing.T) {
	cfg := FleetConfig{
		Gen:      GenConfig{Seed: 2, Members: 3},
		Days:     4,
		Horizon:  1,
		Opt:      scenarioTestOpt(),
		Parallel: 3,
	}
	rep, err := (&Fleet{Cfg: cfg, Runner: LocalRunner{}}).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ViolatingDays != 0 {
		t.Fatalf("%d committed violating days, want 0", rep.ViolatingDays)
	}
	if len(rep.Revenues) != 3 {
		t.Fatalf("report covers %d members, want 3", len(rep.Revenues))
	}
}
