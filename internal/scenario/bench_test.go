package scenario

import (
	"context"
	"testing"
)

// benchFleetCfg is the throughput workload: a small in-process fleet
// whose members are fully independent, so member-level parallelism is
// pure speedup. The per-day budget is kept tiny — the metric under test
// is the fleet driver's scheduling, not GP quality.
func benchFleetCfg(par int) FleetConfig {
	return FleetConfig{
		Gen:     GenConfig{Seed: 9, Members: 4},
		Days:    3,
		Horizon: 1,
		Opt: OptConfig{
			Strategy:    "mic-q-EGO",
			BatchSize:   2,
			InitSamples: 4,
			MaxCycles:   2,
			MaxIter:     5,
			Restarts:    1,
			Seed:        9,
		},
		Parallel: par,
	}
}

// benchFleet runs the fleet b.N times and reports days-per-minute: total
// committed operational days per minute of wall time. bench.sh -check
// holds BenchmarkFleetParallel's value at or above
// BenchmarkFleetSerial's whenever GOMAXPROCS > 1.
func benchFleet(b *testing.B, par int) {
	cfg := benchFleetCfg(par)
	days := 0
	for i := 0; i < b.N; i++ {
		rep, err := (&Fleet{Cfg: cfg, Runner: LocalRunner{}}).Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		days += rep.Members * rep.Days
	}
	if min := b.Elapsed().Minutes(); min > 0 {
		b.ReportMetric(float64(days)/min, "days-per-minute")
	}
}

func BenchmarkFleetSerial(b *testing.B) { benchFleet(b, 1) }

func BenchmarkFleetParallel(b *testing.B) { benchFleet(b, 4) }
