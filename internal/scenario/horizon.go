package scenario

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fp"
	"repro/internal/gp"
	"repro/internal/parallel"
	"repro/internal/strategy"
	"repro/internal/uphes"
)

// DaySpec identifies one rolling-horizon optimization cell: member m,
// day d, optimizing the next Horizon days from the carried reservoir
// state. It is wire-serializable — the serving tier ships it inside a
// session spec and rebuilds the identical problem on the server, since
// the generator regenerates any (member, day) window from Gen.Seed
// alone.
type DaySpec struct {
	// Gen is the ensemble configuration (the seed is the ensemble
	// identity).
	Gen GenConfig `json:"gen"`
	// Cons is the constraint configuration.
	Cons ConstraintConfig `json:"constraints"`
	// Member and Day locate the cell in the ensemble.
	Member int `json:"member"`
	Day    int `json:"day"`
	// Horizon is the number of look-ahead days optimized jointly
	// (decision dimension = 12·Horizon); only day 0 is committed.
	Horizon int `json:"horizon"`
	// Start is the reservoir state carried into the horizon.
	Start uphes.PlantState `json:"start"`
	// SimLatencyNS is the simulated per-evaluation latency (default
	// 10s).
	SimLatencyNS time.Duration `json:"sim_latency_ns,omitempty"`
}

func (s *DaySpec) validate() error {
	if s.Member < 0 || s.Day < 0 {
		return fmt.Errorf("scenario: negative cell (member %d, day %d)", s.Member, s.Day)
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("scenario: non-positive horizon %d", s.Horizon)
	}
	return nil
}

// ProblemName is the deterministic problem identity of the cell; session
// resume validates checkpoints against it.
func (s *DaySpec) ProblemName() string {
	return fmt.Sprintf("uphes-scn-m%d-d%d-h%d", s.Member, s.Day, s.Horizon)
}

// Build assembles the cell's optimization problem: the horizon-tiled
// decision box over the constrained evaluator. The returned Constrained
// is the same instance the problem evaluates through, so its violation
// cache is shared with the model factory.
func (s *DaySpec) Build() (*core.Problem, *Constrained, error) {
	if err := s.validate(); err != nil {
		return nil, nil, err
	}
	base := uphes.DefaultConfig()
	base.Seed = s.Gen.Seed
	sim, err := uphes.New(base)
	if err != nil {
		return nil, nil, err
	}
	gen := NewGenerator(base, s.Gen)
	latency := s.SimLatencyNS
	if latency <= 0 {
		latency = 10 * time.Second
	}
	cons := &Constrained{
		Sim:     sim,
		Inputs:  gen.Days(s.Member, s.Day, s.Horizon),
		Start:   s.Start,
		Cons:    s.Cons.withDefaults(),
		Latency: latency,
	}
	dayLo, dayHi := sim.Bounds()
	lo := make([]float64, 0, s.Horizon*uphes.Dim)
	hi := make([]float64, 0, s.Horizon*uphes.Dim)
	for i := 0; i < s.Horizon; i++ {
		lo = append(lo, dayLo...)
		hi = append(hi, dayHi...)
	}
	prob := &core.Problem{
		Name:      s.ProblemName(),
		Lo:        lo,
		Hi:        hi,
		Minimize:  false,
		Evaluator: cons,
	}
	return prob, cons, nil
}

// OptConfig is the per-day engine configuration shared by every cell of
// a fleet run. Zero fields select the engine defaults; the Seed field is
// the fleet master seed from which each cell derives its own engine
// seed.
type OptConfig struct {
	// Strategy is a strategy registry name (default "mic-q-EGO").
	Strategy string `json:"strategy,omitempty"`
	// Mode is "" or "sync" for batch-synchronous, "async" for
	// asynchronous single-point scheduling.
	Mode string `json:"mode,omitempty"`
	// BatchSize, InitSamples and Workers map onto the engine.
	BatchSize   int `json:"batch_size,omitempty"`
	InitSamples int `json:"init_samples,omitempty"`
	Workers     int `json:"workers,omitempty"`
	// MaxCycles bounds each day's BO cycles (default 8). Days terminate
	// on cycle count, never on the virtual budget, so measured
	// fit/acquisition times cannot change the trace.
	MaxCycles int `json:"max_cycles,omitempty"`
	// OverheadFactor calibrates measured algorithm time (engine
	// default 6).
	OverheadFactor float64 `json:"overhead_factor,omitempty"`
	// Model carries the GP schedule knobs (zero values defer to
	// gp-side defaults, as the engine's default factory does).
	Restarts     int `json:"restarts,omitempty"`
	MaxIter      int `json:"max_iter,omitempty"`
	FitSubsetMax int `json:"fit_subset_max,omitempty"`
	RefitEvery   int `json:"refit_every,omitempty"`
	// Seed is the fleet master seed.
	Seed uint64 `json:"seed"`
}

// Defaulted returns the configuration with the documented defaults
// applied — what the serving tier writes into a session spec, so the
// created session and a local run resolve identical engines.
func (o OptConfig) Defaulted() OptConfig { return o.withDefaults() }

func (o OptConfig) withDefaults() OptConfig {
	if o.Strategy == "" {
		o.Strategy = "mic-q-EGO"
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 8
	}
	return o
}

func (o OptConfig) mode() (core.Mode, error) {
	switch o.Mode {
	case "", "sync":
		return core.Synchronous, nil
	case "async":
		return core.Asynchronous, nil
	default:
		return 0, fmt.Errorf("scenario: unknown mode %q (want \"sync\" or \"async\")", o.Mode)
	}
}

// Engine assembles the cell's core.Engine: the horizon problem, the
// named strategy, and the constrained two-GP model factory, with the
// engine seed derived from the fleet master seed so every cell is an
// independent reproducible run. Both the in-process runner and the
// serving tier build engines through here, so a session created
// remotely replays the identical run.
func (s *DaySpec) Engine(opt OptConfig) (*core.Engine, *Constrained, error) {
	opt = opt.withDefaults()
	prob, cons, err := s.Build()
	if err != nil {
		return nil, nil, err
	}
	strat, err := strategy.ByName(opt.Strategy)
	if err != nil {
		return nil, nil, err
	}
	mode, err := opt.mode()
	if err != nil {
		return nil, nil, err
	}
	seed := DerivedSeed(opt.Seed, s.Member, s.Day)
	factory := NewConstrainedFactory(cons, gp.Config{
		Lo:           prob.Lo,
		Hi:           prob.Hi,
		Restarts:     opt.Restarts,
		MaxIter:      opt.MaxIter,
		FitSubsetMax: opt.FitSubsetMax,
		Seed:         seed,
	}, opt.RefitEvery)
	eng := &core.Engine{
		Problem:        prob,
		Strategy:       strat,
		Mode:           mode,
		BatchSize:      opt.BatchSize,
		InitSamples:    opt.InitSamples,
		MaxCycles:      opt.MaxCycles,
		Budget:         time.Duration(horizonBudget),
		OverheadFactor: opt.OverheadFactor,
		Pool:           &parallel.Pool{Workers: opt.Workers},
		Model: core.ModelConfig{
			Restarts:     opt.Restarts,
			MaxIter:      opt.MaxIter,
			FitSubsetMax: opt.FitSubsetMax,
			RefitEvery:   opt.RefitEvery,
		},
		Seed:    seed,
		Factory: factory,
	}
	return eng, cons, nil
}

// DayRunner runs one cell's optimization to completion and returns its
// result. LocalRunner solves in-process; the serving tier's FleetRunner
// drives a pboserver session instead, so a fleet can outlive any single
// process.
type DayRunner interface {
	RunDay(ctx context.Context, spec *DaySpec, opt OptConfig) (*core.Result, error)
}

// LocalRunner is the in-process DayRunner: a closed-loop engine run per
// cell.
type LocalRunner struct{}

// RunDay implements DayRunner.
func (LocalRunner) RunDay(ctx context.Context, spec *DaySpec, opt OptConfig) (*core.Result, error) {
	eng, _, err := spec.Engine(opt)
	if err != nil {
		return nil, err
	}
	return eng.Run(ctx)
}

// DayRecord is the committed outcome of one operational day.
type DayRecord struct {
	Day int `json:"day"`
	// X is the committed 12-dimensional schedule (day 0 of the best
	// feasible horizon trace point).
	X []float64 `json:"x"`
	// Profit is the realized profit of the committed day.
	Profit float64 `json:"profit"`
	// Violation is the committed day's own constraint excess (0 when
	// the day ran feasibly).
	Violation float64 `json:"violation"`
	Feasible  bool    `json:"feasible"`
	// Fallback marks days committed from the idle fallback schedule
	// because no evaluated horizon point was feasible.
	Fallback bool `json:"fallback,omitempty"`
	// Switches is the committed day's pump↔turbine reversal count.
	Switches int `json:"switches"`
	// EndUpperFill is the upper reservoir fill carried to the next day.
	EndUpperFill float64 `json:"end_upper_fill"`
	// BestY is the optimized horizon objective of the selected point.
	BestY float64 `json:"best_y"`
	// Evals is the number of horizon evaluations the day's run spent.
	Evals int `json:"evals"`
}

// MemberResult is one ensemble member's year (or shorter window):
// committed days, total realized revenue, and violation accounting.
type MemberResult struct {
	Member        int              `json:"member"`
	Revenue       float64          `json:"revenue"`
	ViolatingDays int              `json:"violating_days"`
	Fallbacks     int              `json:"fallbacks"`
	Days          []DayRecord      `json:"days"`
	EndState      uphes.PlantState `json:"end_state"`
}

// commitDay selects the schedule to commit from a finished day run: the
// best-profit evaluated horizon point that satisfies every constraint,
// or the idle (all-zero) schedule when none does. Violations are
// recomputed deterministically from the spec, so the selection is
// identical whether the run happened in-process or behind a server.
func commitDay(cons *Constrained, res *core.Result, horizon int) (x []float64, bestY float64, fallback bool) {
	bestIdx := -1
	for i, xi := range res.X {
		if !cons.Feasible(xi) {
			continue
		}
		if bestIdx < 0 || res.Y[i] > bestY {
			bestIdx, bestY = i, res.Y[i]
		}
	}
	if bestIdx >= 0 {
		return res.X[bestIdx], bestY, false
	}
	zero := make([]float64, horizon*uphes.Dim)
	y, _ := cons.Eval(zero)
	return zero, y, true
}

// RunMember rolls one ensemble member through days [0, days): each day
// optimizes a Horizon-day window from the carried reservoir state via
// the runner, commits the first day of the best feasible point, realizes
// it on the member's actual day inputs, and carries the end state
// forward. The trajectory is a pure function of (configs, seed).
func RunMember(ctx context.Context, r DayRunner, gen GenConfig, cons ConstraintConfig, opt OptConfig, member, days, horizon int, latency time.Duration) (*MemberResult, error) {
	base := uphes.DefaultConfig()
	state := uphes.DefaultState(&base.Plant)
	mr := &MemberResult{Member: member, Days: make([]DayRecord, 0, days)}
	for day := 0; day < days; day++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		spec := &DaySpec{
			Gen:          gen,
			Cons:         cons,
			Member:       member,
			Day:          day,
			Horizon:      horizon,
			Start:        state,
			SimLatencyNS: latency,
		}
		res, err := r.RunDay(ctx, spec, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario: member %d day %d: %w", member, day, err)
		}
		// Rebuild the cell locally (cheap and deterministic) to judge
		// feasibility of the returned trace and to realize the committed
		// day.
		_, dayCons, err := spec.Build()
		if err != nil {
			return nil, err
		}
		x, bestY, fallback := commitDay(dayCons, res, horizon)
		b, next, dm := dayCons.Sim.SimulateDay(x[:uphes.Dim], state, &dayCons.Inputs[0])
		vio := dayCons.dayViolation(&dm)
		rec := DayRecord{
			Day:          day,
			X:            append([]float64(nil), x[:uphes.Dim]...),
			Profit:       b.Profit,
			Violation:    vio,
			Feasible:     fp.Zero(vio),
			Fallback:     fallback,
			Switches:     dm.Switches,
			EndUpperFill: next.UpperV / dayCons.Sim.Config().Plant.UpperVolumeMax,
			BestY:        bestY,
			Evals:        res.Evals,
		}
		mr.Days = append(mr.Days, rec)
		mr.Revenue += b.Profit
		if !rec.Feasible {
			mr.ViolatingDays++
		}
		if fallback {
			mr.Fallbacks++
		}
		state = next
	}
	mr.EndState = state
	return mr, nil
}
