package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseForSuppress parses one synthetic file and collects its directives.
func parseForSuppress(t *testing.T, src string) (*token.FileSet, *suppressionSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "sup.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return fset, collectSuppressions(fset, []*ast.File{f})
}

func at(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line, Column: 1}
}

func TestSuppressCommaListWithSpaces(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore godiscipline, errcheck legacy shim shared by both checks
func f() {}
`)
	if len(set.meta) != 0 {
		t.Fatalf("unexpected meta diagnostics: %v", set.meta)
	}
	if len(set.entries) != 1 {
		t.Fatalf("entries = %d, want 1", len(set.entries))
	}
	e := set.entries[0]
	if !e.analyzers["godiscipline"] || !e.analyzers["errcheck"] || len(e.analyzers) != 2 {
		t.Errorf("analyzers = %v, want {godiscipline, errcheck}", e.analyzers)
	}
	if e.reason != "legacy shim shared by both checks" {
		t.Errorf("reason = %q: comma-consumed words must not leak into it", e.reason)
	}
	// The directive is on line 3 and covers lines 3 and 4 for both names.
	for _, name := range []string{"godiscipline", "errcheck"} {
		if !set.suppresses(name, at("sup.go", 4)) {
			t.Errorf("%s not suppressed on the directive's next line", name)
		}
	}
	if set.suppresses("norand", at("sup.go", 4)) {
		t.Error("unnamed analyzer suppressed")
	}
}

func TestSuppressCompactCommaList(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore godiscipline,errcheck one reason for both
func f() {}
`)
	if len(set.entries) != 1 || len(set.entries[0].analyzers) != 2 {
		t.Fatalf("entries = %+v, want one entry naming two analyzers", set.entries)
	}
	if set.entries[0].reason != "one reason for both" {
		t.Errorf("reason = %q", set.entries[0].reason)
	}
}

// A standalone directive separated from its target by a blank line binds
// to nothing: neither its own vicinity nor the eventual target.
func TestSuppressBlankLineDoesNotBind(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore godiscipline drifted away from its target

func f() {}
`)
	if len(set.entries) != 1 {
		t.Fatalf("entries = %d, want 1 (the directive itself is well formed)", len(set.entries))
	}
	if set.suppresses("godiscipline", at("sup.go", 5)) {
		t.Error("directive on line 3 suppressed line 5 across a blank line")
	}
	if !set.suppresses("godiscipline", at("sup.go", 4)) {
		t.Error("directive must still cover the (blank) line directly below — binding is by line, not content")
	}
}

// A typoed analyzer name must be reported, not silently ignored: the
// author believes something is waived when nothing is.
func TestSuppressUnknownAnalyzerReported(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore floatcomp tolerance helper predates the analyzer
func f() {}
`)
	if len(set.entries) != 0 {
		t.Errorf("entries = %+v, want none: the only name is unknown", set.entries)
	}
	if len(set.meta) != 1 || !strings.Contains(set.meta[0].Message, `unknown analyzer "floatcomp"`) {
		t.Errorf("meta = %v, want one unknown-analyzer diagnostic", set.meta)
	}
}

// A mixed list keeps the known names working while reporting the typo.
func TestSuppressMixedKnownUnknown(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore errcheck,nosuch best-effort write
func f() {}
`)
	if len(set.meta) != 1 || !strings.Contains(set.meta[0].Message, "unknown analyzer") {
		t.Errorf("meta = %v, want one unknown-analyzer diagnostic", set.meta)
	}
	if len(set.entries) != 1 || !set.entries[0].analyzers["errcheck"] {
		t.Errorf("entries = %+v, want errcheck still waived", set.entries)
	}
}

func TestSuppressMalformedDirectives(t *testing.T) {
	_, set := parseForSuppress(t, `package p

//lint:ignore errcheck
func f() {}

//lint:ignore
func g() {}
`)
	if len(set.entries) != 0 {
		t.Errorf("entries = %+v, want none", set.entries)
	}
	if len(set.meta) != 2 {
		t.Fatalf("meta = %d diagnostics, want 2 (missing reason; missing everything)", len(set.meta))
	}
	for _, d := range set.meta {
		if !strings.Contains(d.Message, "malformed directive") {
			t.Errorf("unexpected meta diagnostic: %v", d)
		}
	}
	if set.suppresses("errcheck", at("sup.go", 4)) {
		t.Error("reasonless directive suppressed its target")
	}
}
