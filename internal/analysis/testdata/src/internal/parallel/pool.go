// Package parallel is a pbolint fixture: its import path ends in
// internal/parallel, the one place goroutines may be spawned.
package parallel

// ForEach runs fn(i) for each i on its own goroutine — allowed here.
func ForEach(n int, fn func(int)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
