// Package rng is a pbolint fixture: its import path ends in
// internal/rng, the one place math/rand imports are allowed.
package rng

import "math/rand/v2"

// Stream wraps the stdlib generator.
type Stream struct{ r *rand.Rand }

// New seeds a stream.
func New(a, b uint64) *Stream { return &Stream{r: rand.New(rand.NewPCG(a, b))} }
