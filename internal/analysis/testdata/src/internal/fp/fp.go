// Package fp is a pbolint fixture: its import path ends in internal/fp,
// the approved home of tolerance helpers, so exact comparisons inside it
// stay silent.
package fp

// Exact is the approved escape hatch for bit-level equality.
func Exact(a, b float64) bool { return a == b }
