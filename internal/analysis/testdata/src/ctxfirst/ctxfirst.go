// Package ctxfirst is a pbolint fixture: context.Context parameters that
// are not first — in functions, methods, function literals and interface
// methods — and contexts stored in struct fields must be reported;
// ctx-first signatures, context-free code and a reasoned suppression stay
// silent.
package ctxfirst

import "context"

// FireLate takes its context second — reported.
func FireLate(x int, ctx context.Context) error {
	return ctx.Err()
}

// fireBag stores a context in a field — reported.
type fireBag struct {
	ctx context.Context
	n   int
}

// FireLit is a function literal with a trailing context — reported.
var FireLit = func(n int, ctx context.Context) error { return ctx.Err() }

// FireIface declares an interface method with a late context — reported.
type FireIface interface {
	Do(x int, ctx context.Context) error
}

// Quiet takes its context first — silent.
func Quiet(ctx context.Context, x int) error { return ctx.Err() }

// worker is context-free — silent.
type worker struct{ n int }

// Run is a method with its context first — silent.
func (w worker) Run(ctx context.Context, x int) error { return ctx.Err() }

// FireSuppressed keeps a legacy callback signature under a reasoned
// suppression — silent.
//
//lint:ignore ctxfirst fixture: legacy callback signature kept for compatibility
func FireSuppressed(x int, ctx context.Context) error { return ctx.Err() }

// use keeps the otherwise-unreferenced fixture declarations alive.
func use(b fireBag) int { return b.n + worker{}.n }

var _ = use
