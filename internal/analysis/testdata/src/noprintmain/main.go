// Command noprintmain is a pbolint fixture: package main may print —
// presentation is exactly what cmd/ binaries are for.
package main

import "fmt"

func main() {
	fmt.Println("binaries may print")
}
