// Package norand is a pbolint fixture: raw math/rand imports outside
// internal/rng must be reported; a reasoned //lint:ignore silences one.
package norand

import (
	mrand "math/rand"
	"math/rand/v2"

	//lint:ignore norand fixture: suppressed legacy import
	orand "math/rand"
)

// Draw uses all three imports so the file compiles.
func Draw() (float64, float64, float64) {
	legacy := mrand.New(mrand.NewSource(1))
	allowed := orand.New(orand.NewSource(2))
	modern := rand.New(rand.NewPCG(3, 4))
	return legacy.Float64(), allowed.Float64(), modern.Float64()
}
