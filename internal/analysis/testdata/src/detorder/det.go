// Package detorder is a pbolint fixture: accumulation in map-iteration
// order, wall-clock reads, and rng draws on streams captured by parallel
// regions must be reported; sanctioned seams carry reasoned
// suppressions, and a typoed analyzer name in a directive is itself
// reported.
package detorder

import (
	"sort"
	"time"
)

// Stream mirrors the project's rng.Stream draw surface; the analyzer
// matches it by name because fixtures cannot import internal/rng.
type Stream struct{ state uint64 }

// Split derives a child stream, advancing the parent.
func (s *Stream) Split(i uint64) *Stream { s.state += i; return &Stream{state: s.state} }

// Float64 draws from the stream, advancing it.
func (s *Stream) Float64() float64 { s.state++; return 0 }

// ForEach mirrors parallel.ForEach's shape; the fixture body runs
// serially so the fixture itself spawns no goroutines.
func ForEach(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// rec collects lines; Print mirrors an output sink by name.
type rec struct{ lines []string }

// Print records one line.
func (r *rec) Print(s string) { r.lines = append(r.lines, s) }

// Keys accumulates in map order with no sort after the loop — reported.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// KeysSorted sorts after the loop — silent.
func KeysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes output in map-iteration order — reported.
func Dump(m map[string]int, r *rec) {
	for k := range m {
		r.Print(k)
	}
}

// Elapsed measures with the wall clock — both reads reported.
func Elapsed() time.Duration {
	start := time.Now()
	return time.Since(start)
}

// DefaultClock stores a wall-clock reference, not a call — reported.
var DefaultClock = time.Now

// Stamp is a sanctioned wall-clock seam — suppressed.
func Stamp() time.Time {
	//lint:ignore detorder fixture: sanctioned wall-clock seam
	return time.Now()
}

// SharedDraw splits a captured stream inside the region — reported; the
// draw on the region-local child stays silent.
func SharedDraw(n int, s *Stream) []float64 {
	out := make([]float64, n)
	ForEach(n, func(i int) {
		child := s.Split(uint64(i))
		out[i] = child.Float64()
	})
	return out
}

// PreSplit draws only from per-index streams — silent.
func PreSplit(n int, s *Stream) []float64 {
	streams := make([]*Stream, n)
	for i := range streams {
		streams[i] = s.Split(uint64(i))
	}
	out := make([]float64, n)
	ForEach(n, func(i int) {
		out[i] = streams[i].Float64()
	})
	return out
}

// DrawInGo draws from a captured stream inside a goroutine — reported.
func DrawInGo(s *Stream, done chan float64) {
	//lint:ignore godiscipline fixture: parallel region under analysis
	go func() {
		done <- s.Float64()
	}()
}

// Mix draws serially — silent for detorder, but the directive names an
// analyzer that does not exist and is itself reported.
func Mix(s *Stream) float64 {
	//lint:ignore determinism fixture: typoed analyzer name
	return s.Float64()
}
