// Package errcheck is a pbolint fixture: discarded error returns — bare
// calls and blank assignments — must be reported; handled errors,
// non-error blanks, deferred calls, the in-memory-writer allowlist and a
// reasoned suppression stay silent.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func parse(s string) (int, error) { return len(s), nil }

// Sloppy discards errors three ways — three reports.
func Sloppy() int {
	mayFail()
	_ = mayFail()
	n, _ := parse("x")
	return n
}

// Careful handles everything — silent.
func Careful() (string, error) {
	defer mayFail() // deferred calls are exempt

	if err := mayFail(); err != nil {
		return "", err
	}
	n, err := parse("x")
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("n = ") // strings.Builder errors are always nil
	fmt.Fprintf(&sb, "%d", n)

	//lint:ignore errcheck fixture: best-effort cleanup
	mayFail()
	return sb.String(), nil
}
