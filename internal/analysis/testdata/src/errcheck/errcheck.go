// Package errcheck is a pbolint fixture: discarded error returns — bare
// calls and blank assignments — must be reported; handled errors,
// non-error blanks, most deferred calls, the in-memory-writer allowlist
// and a reasoned suppression stay silent. Deferred (*os.File).Close and
// Sync are the exception: on write paths those errors are the write
// failure, so deferring them unchecked is reported.
package errcheck

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func parse(s string) (int, error) { return len(s), nil }

// Sloppy discards errors three ways — three reports.
func Sloppy() int {
	mayFail()
	_ = mayFail()
	n, _ := parse("x")
	return n
}

// Careful handles everything — silent.
func Careful() (string, error) {
	defer mayFail() // deferred calls are exempt

	if err := mayFail(); err != nil {
		return "", err
	}
	n, err := parse("x")
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("n = ") // strings.Builder errors are always nil
	fmt.Fprintf(&sb, "%d", n)

	//lint:ignore errcheck fixture: best-effort cleanup
	mayFail()
	return sb.String(), nil
}

// SloppyWrite defers Close and Sync on a written file — two reports: the
// deferred errors are the only place a failed write would surface.
func SloppyWrite(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	defer f.Sync()
	_, err = f.Write(data)
	return err
}

// CarefulWrite syncs and closes explicitly, checking both — silent. The
// reasoned suppression covers the best-effort cleanup close on the error
// path, and deferring Close on a type that is not *os.File (the strings
// fixture reader below) stays exempt.
func CarefulWrite(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		//lint:ignore errcheck fixture: the write error is already being returned
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

type closer struct{}

func (closer) Close() error { return nil }

// NotAFile defers Close on a non-file type — deferred calls stay exempt.
func NotAFile() {
	var c closer
	defer c.Close()
}
