// Package godiscipline is a pbolint fixture: bare go statements outside
// internal/parallel must be reported; a reasoned suppression silences
// one, and a directive missing its reason is itself reported.
package godiscipline

// Fire spawns an unaccounted goroutine — reported.
func Fire(done chan struct{}) {
	go func() {
		close(done)
	}()
}

// FireSuppressed carries a reasoned suppression — silent.
func FireSuppressed(done chan struct{}) {
	//lint:ignore godiscipline fixture: lifecycle goroutine outside the evaluation path
	go func() {
		close(done)
	}()
}

// FireMalformed has a directive without a reason — the directive itself
// is reported, and so is the go statement it fails to cover.
func FireMalformed(done chan struct{}) {
	//lint:ignore godiscipline
	go func() {
		close(done)
	}()
}
