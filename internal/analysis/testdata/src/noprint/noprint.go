// Package noprint is a pbolint fixture: direct stdout/stderr output from
// an internal library package must be reported.
package noprint

import (
	"fmt"
	"io"
	"log"
	"os"
)

// Out leaks the process stdout into library state.
var Out io.Writer = os.Stdout

// Chatty prints from library code, three different ways.
func Chatty(x float64) string {
	fmt.Println("solving...")
	log.Printf("x = %v", x)
	return Describe(x)
}

// Describe is compliant: it returns the text instead of printing it.
func Describe(x float64) string {
	return fmt.Sprintf("x = %v", x)
}
