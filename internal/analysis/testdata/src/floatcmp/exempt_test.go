package floatcmp

import "testing"

// Determinism tests assert bit-identical replay by design, so _test.go
// files are exempt from floatcmp.
func TestBitExactReplay(t *testing.T) {
	a, b := 0.1+0.2, 0.1+0.2
	if a != b {
		t.Fatal("replay diverged")
	}
}
