// Package floatcmp is a pbolint fixture: exact equality on
// floating-point operands must be reported; integer comparisons,
// constant-constant comparisons and suppressed lines stay silent.
package floatcmp

// Converged compares floats exactly — reported.
func Converged(a, b float64) bool {
	return a == b
}

// NonZero compares a float against a literal — reported.
func NonZero(x float64) bool {
	return x != 0
}

// Sentinel is exact on purpose and carries a reasoned suppression.
func Sentinel(x float64) bool {
	return x == -1 //lint:ignore floatcmp fixture: sentinel check is bit-exact by design
}

// SameLen is an integer comparison — silent.
func SameLen(a, b []float64) bool {
	return len(a) == len(b)
}

const eps1, eps2 = 1e-9, 1e-12

// tightest is a constant-constant comparison, folded at compile time — silent.
var tightest = eps1 == eps2
