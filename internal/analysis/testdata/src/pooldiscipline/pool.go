// Package pooldiscipline is a pbolint fixture: sync.Pool values must be
// Put back on every return path and must not escape the acquiring
// function; the one sanctioned acquire helper carries a reasoned
// suppression on its escaping return, and its callers owe the Put.
package pooldiscipline

import "sync"

var scratch = sync.Pool{New: func() any { return new(ws) }}

// ws is a pooled workspace.
type ws struct{ buf []float64 }

// holder outlives any single call.
type holder struct{ last *ws }

// LeakOnError returns early without a Put — reported at the return.
func LeakOnError(n int) int {
	w := scratch.Get().(*ws)
	if n < 0 {
		return 0
	}
	scratch.Put(w)
	return n
}

// NeverPut falls off the end still holding — reported at the Get.
func NeverPut() {
	w := scratch.Get().(*ws)
	w.buf = w.buf[:0]
}

// Escape hands out a slice aliasing the pooled workspace — reported.
func Escape(n int) []float64 {
	w := scratch.Get().(*ws)
	defer scratch.Put(w)
	return w.buf[:n]
}

// Stash parks the pooled workspace on long-lived state — reported.
func Stash(h *holder) {
	w := scratch.Get().(*ws)
	h.last = w
	scratch.Put(w)
}

// Publish sends the pooled workspace to another goroutine — reported.
func Publish(ch chan *ws) {
	w := scratch.Get().(*ws)
	ch <- w
	scratch.Put(w)
}

// grab is the sanctioned acquire-helper shape: the escaping return
// carries a reasoned waiver, and callers owe the Put instead.
func grab() *ws {
	w := scratch.Get().(*ws)
	//lint:ignore pooldiscipline fixture: acquire helper hands ownership to the caller
	return w
}

// UseGrabLeak takes from the acquire helper and never Puts — reported.
func UseGrabLeak() int {
	w := grab()
	return len(w.buf)
}

// UseGrabClean Puts what the helper handed out — silent.
func UseGrabClean() int {
	w := grab()
	n := len(w.buf)
	scratch.Put(w)
	return n
}

// CleanDefer is the canonical shape — silent.
func CleanDefer() int {
	w := scratch.Get().(*ws)
	defer scratch.Put(w)
	return cap(w.buf)
}

// CleanBranches Puts on both arms before returning — silent.
func CleanBranches(n int) int {
	w := scratch.Get().(*ws)
	if n > 0 {
		scratch.Put(w)
		return n
	}
	scratch.Put(w)
	return 0
}
