// Package locksafe is a pbolint fixture: pointers read from
// mutex-guarded fields must not leave the critical section alive, and no
// blocking call may run while the lock is held; one deliberate live
// borrow carries a reasoned suppression.
package locksafe

import "sync"

// Item is the guarded record.
type Item struct{ N int }

// Clone returns a detached copy.
func (it *Item) Clone() *Item { c := *it; return &c }

// Registry guards its map and current pointer with mu.
type Registry struct {
	mu    sync.Mutex
	items map[string]*Item
	cur   *Item
	ch    chan *Item
	wg    sync.WaitGroup
}

// GetLive returns a live guarded pointer — reported.
func (r *Registry) GetLive(id string) *Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	it := r.items[id]
	return it
}

// Current returns the guarded field itself while holding the lock —
// reported.
func (r *Registry) Current() *Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// AfterUnlock releases first, but the pointer is still live state —
// reported.
func (r *Registry) AfterUnlock(id string) *Item {
	r.mu.Lock()
	it := r.items[id]
	r.mu.Unlock()
	return it
}

// SendLive publishes the guarded pointer over a channel — reported.
func (r *Registry) SendLive(id string) {
	r.mu.Lock()
	it := r.items[id]
	r.mu.Unlock()
	r.ch <- it
}

// WaitUnderLock blocks twice while holding the lock — both reported.
func (r *Registry) WaitUnderLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.wg.Wait()
	r.ch <- nil
}

// CallbackUnderLock invokes an opaque callback under the lock — reported.
func (r *Registry) CallbackUnderLock(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn()
}

// Snapshot returns a detached copy — silent.
func (r *Registry) Snapshot(id string) *Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[id].Clone()
}

// Count returns a value copy — silent.
func (r *Registry) Count(id string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	it := r.items[id]
	if it == nil {
		return 0
	}
	return it.N
}

// Borrow is a sanctioned short-lived live reference — suppressed.
func (r *Registry) Borrow(id string) *Item {
	r.mu.Lock()
	defer r.mu.Unlock()
	it := r.items[id]
	//lint:ignore locksafe fixture: caller drops the reference before the next Tell
	return it
}
