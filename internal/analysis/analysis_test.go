package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// sharedLoader amortizes stdlib source-compilation across subtests.
var sharedLoader = NewLoader()

// goldenCases pairs each analyzer with a fixture package that must fire
// and a compliant package that must stay silent; expected diagnostics
// live in testdata/<analyzer>.golden.
var goldenCases = []struct {
	analyzer *Analyzer
	fixtures []string
}{
	{NoRand, []string{"testdata/src/norand", "testdata/src/internal/rng"}},
	{NoPrint, []string{"testdata/src/noprint", "testdata/src/noprintmain"}},
	{FloatCmp, []string{"testdata/src/floatcmp", "testdata/src/internal/fp"}},
	{GoDiscipline, []string{"testdata/src/godiscipline", "testdata/src/internal/parallel"}},
	{ErrCheck, []string{"testdata/src/errcheck"}},
	{CtxFirst, []string{"testdata/src/ctxfirst"}},
	{PoolDiscipline, []string{"testdata/src/pooldiscipline"}},
	{LockSafe, []string{"testdata/src/locksafe"}},
	{DetOrder, []string{"testdata/src/detorder"}},
}

func TestAnalyzersGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkgs, err := sharedLoader.Load(tc.fixtures...)
			if err != nil {
				t.Fatal(err)
			}
			var lines []string
			for _, pkg := range pkgs {
				if len(pkg.TypeErrors) > 0 {
					t.Fatalf("fixture %s has type errors, first: %v", pkg.Path, pkg.TypeErrors[0])
				}
				for _, d := range Run(pkg, []*Analyzer{tc.analyzer}) {
					d.Pos.Filename = filepath.ToSlash(d.Pos.Filename)
					lines = append(lines, d.String())
				}
			}
			got := strings.Join(lines, "\n")
			if len(lines) > 0 {
				got += "\n"
			}
			golden := filepath.Join("testdata", tc.analyzer.Name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestAnalyzersFireAndStaySilent is a belt-and-braces check independent
// of golden content: every analyzer fires at least once on its violation
// fixture and never on its compliant fixture.
func TestAnalyzersFireAndStaySilent(t *testing.T) {
	for _, tc := range goldenCases {
		bad, compliant := tc.fixtures[0], ""
		if len(tc.fixtures) > 1 {
			compliant = tc.fixtures[1]
		}
		pkgs, err := sharedLoader.Load(tc.fixtures...)
		if err != nil {
			t.Fatal(err)
		}
		fired := false
		for _, pkg := range pkgs {
			for _, d := range Run(pkg, []*Analyzer{tc.analyzer}) {
				if d.Analyzer != tc.analyzer.Name {
					continue // pbolint meta-diagnostics for malformed directives
				}
				dir := filepath.ToSlash(filepath.Dir(d.Pos.Filename))
				switch dir {
				case bad:
					fired = true
				case compliant:
					t.Errorf("%s fired on compliant fixture: %s", tc.analyzer.Name, d)
				}
			}
		}
		if !fired {
			t.Errorf("%s did not fire on %s", tc.analyzer.Name, bad)
		}
	}
}

func TestSuppressionRequiresReason(t *testing.T) {
	pkgs, err := sharedLoader.Load("testdata/src/godiscipline")
	if err != nil {
		t.Fatal(err)
	}
	var malformed, unsuppressed int
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, []*Analyzer{GoDiscipline}) {
			if d.Analyzer == "pbolint" && strings.Contains(d.Message, "malformed") {
				malformed++
			}
			if d.Analyzer == "godiscipline" {
				unsuppressed++
			}
		}
	}
	if malformed != 1 {
		t.Errorf("malformed-directive diagnostics = %d, want 1", malformed)
	}
	// Fire (uncovered) and FireMalformed (reasonless directive) both
	// report; FireSuppressed does not.
	if unsuppressed != 2 {
		t.Errorf("godiscipline diagnostics = %d, want 2", unsuppressed)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 9, nil", len(all), err)
	}
	two, err := ByName("norand, errcheck")
	if err != nil || len(two) != 2 || two[0] != NoRand || two[1] != ErrCheck {
		t.Fatalf("ByName(\"norand, errcheck\") = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(\"nosuch\") succeeded, want error")
	}
}
