package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A suppression silences one or more analyzers on the line the comment
// trails, or on the line immediately below a comment that stands alone:
//
//	x := a == b //lint:ignore floatcmp bit-exact replay check
//
//	//lint:ignore norand import cycle: rng depends on mat
//	import "math/rand/v2"
//
// The analyzer list may name several analyzers separated by commas
// (spaces after the commas are tolerated). A reason is mandatory; a
// directive without one is itself reported, and so is a directive naming
// an analyzer that does not exist — a typoed name would otherwise
// silence nothing while looking like a waiver.
type suppression struct {
	analyzers map[string]bool
	file      string
	line      int
	reason    string
}

type suppressionSet struct {
	entries []suppression
	// meta holds directive-hygiene diagnostics (malformed directives,
	// unknown analyzer names) reported under the "pbolint" analyzer.
	meta []Diagnostic
}

const ignoreDirective = "//lint:ignore"

// knownAnalyzerNames is the set a directive may legally name: every
// registered analyzer plus "pbolint" itself, the name under which
// directive-hygiene diagnostics are reported.
func knownAnalyzerNames() map[string]bool {
	known := map[string]bool{"pbolint": true}
	for _, a := range All() {
		known[a.Name] = true
	}
	return known
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{}
	known := knownAnalyzerNames()
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				// A comma list with spaces splits the analyzer names across
				// the first Cut: keep consuming words while the name part
				// still ends in a comma, so "a, b reason" parses as
				// analyzers {a, b} with reason "reason".
				for strings.HasSuffix(name, ",") && reason != "" {
					next, restReason, _ := strings.Cut(reason, " ")
					name += next
					reason = strings.TrimSpace(restReason)
				}
				if name == "" || reason == "" {
					set.meta = append(set.meta, Diagnostic{
						Pos:      pos,
						Analyzer: "pbolint",
						Message:  "malformed directive: want //lint:ignore <analyzers> <reason>",
					})
					continue
				}
				s := suppression{analyzers: map[string]bool{}, file: pos.Filename, line: pos.Line, reason: reason}
				for _, n := range strings.Split(name, ",") {
					n = strings.TrimSpace(n)
					if n == "" {
						continue
					}
					if !known[n] {
						set.meta = append(set.meta, Diagnostic{
							Pos:      pos,
							Analyzer: "pbolint",
							Message:  "directive names unknown analyzer " + strconvQuote(n) + ": it suppresses nothing",
						})
						continue
					}
					s.analyzers[n] = true
				}
				if len(s.analyzers) > 0 {
					set.entries = append(set.entries, s)
				}
			}
		}
	}
	return set
}

// strconvQuote is a tiny local quoting helper; the message layer avoids a
// strconv import for a single call site.
func strconvQuote(s string) string { return `"` + s + `"` }

// suppresses reports whether a diagnostic from the named analyzer at pos
// is covered by a directive on the same or the preceding line. A
// standalone directive separated from its target by a blank line covers
// nothing — the binding is deliberately tight so a drifting comment
// cannot silently widen a waiver.
func (s *suppressionSet) suppresses(analyzer string, pos token.Position) bool {
	for _, e := range s.entries {
		if e.file != pos.Filename || !e.analyzers[analyzer] {
			continue
		}
		if e.line == pos.Line || e.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// Suppression is one live //lint:ignore directive, as inventoried by
// Suppressions for the -suppressions waiver report.
type Suppression struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
}

// Suppressions inventories every well-formed //lint:ignore directive in
// the package, sorted by position. Malformed directives are excluded —
// they are diagnostics, not waivers.
func Suppressions(pkg *Package) []Suppression {
	set := collectSuppressions(pkg.Fset, pkg.Files)
	out := make([]Suppression, 0, len(set.entries))
	for _, e := range set.entries {
		names := make([]string, 0, len(e.analyzers))
		for n := range e.analyzers {
			names = append(names, n)
		}
		sort.Strings(names)
		out = append(out, Suppression{File: e.file, Line: e.line, Analyzers: names, Reason: e.reason})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
