package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// A suppression silences one or more analyzers on the line the comment
// trails, or on the line immediately below a comment that stands alone:
//
//	x := a == b //lint:ignore floatcmp bit-exact replay check
//
//	//lint:ignore norand import cycle: rng depends on mat
//	import "math/rand/v2"
//
// The analyzer list may name several analyzers separated by commas. A
// reason is mandatory; a directive without one is itself reported.
type suppression struct {
	analyzers map[string]bool
	file      string
	line      int
}

type suppressionSet struct {
	entries   []suppression
	malformed []Diagnostic
}

const ignoreDirective = "//lint:ignore"

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressionSet {
	set := &suppressionSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignoreDirective))
				name, reason, _ := strings.Cut(rest, " ")
				if name == "" || strings.TrimSpace(reason) == "" {
					set.malformed = append(set.malformed, Diagnostic{
						Pos:      pos,
						Analyzer: "pbolint",
						Message:  "malformed directive: want //lint:ignore <analyzers> <reason>",
					})
					continue
				}
				s := suppression{analyzers: map[string]bool{}, file: pos.Filename, line: pos.Line}
				for _, n := range strings.Split(name, ",") {
					s.analyzers[strings.TrimSpace(n)] = true
				}
				set.entries = append(set.entries, s)
			}
		}
	}
	return set
}

// suppresses reports whether a diagnostic from the named analyzer at pos
// is covered by a directive on the same or the preceding line.
func (s *suppressionSet) suppresses(analyzer string, pos token.Position) bool {
	for _, e := range s.entries {
		if e.file != pos.Filename || !e.analyzers[analyzer] {
			continue
		}
		if e.line == pos.Line || e.line == pos.Line-1 {
			return true
		}
	}
	return false
}
