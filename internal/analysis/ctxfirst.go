package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the project's context-plumbing conventions, introduced
// when cancellation was threaded through the engine: a context.Context is
// always the first parameter of a function, method or function literal,
// and is never stored in a struct field. Contexts are call-scoped — a
// context squirreled away in a struct outlives the call it belongs to,
// which breaks the engine's "cancellation stops the run within one cycle"
// guarantee and hides the cancellation path from readers.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context is the first parameter and never a struct field",
	Run:  runCtxFirst,
}

// isContextType reports whether t is context.Context (through aliases).
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func runCtxFirst(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncType:
				checkCtxParams(p, n)
			case *ast.StructType:
				checkCtxFields(p, n)
			}
			return true
		})
	}
}

// checkCtxParams reports context parameters that are not the first
// parameter. Signatures of methods count parameters after the receiver.
func checkCtxParams(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1
		}
		if t := p.Info.TypeOf(field.Type); t != nil && isContextType(t) && idx > 0 {
			p.Reportf(field.Pos(), "context.Context is parameter %d: pass it first, or //lint:ignore ctxfirst <reason>", idx+1)
		}
		idx += names
	}
}

// checkCtxFields reports struct fields of type context.Context.
func checkCtxFields(p *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if t := p.Info.TypeOf(field.Type); t != nil && isContextType(t) {
			p.Reportf(field.Pos(), "context.Context stored in a struct field: contexts are call-scoped, pass one per call, or //lint:ignore ctxfirst <reason>")
		}
	}
}
