package analysis

import (
	"go/ast"
	"go/types"
)

// PoolDiscipline enforces the workspace-pool ownership rules the hot
// path's zero-allocation design depends on (DESIGN.md §9): a value taken
// from a sync.Pool is owned by the acquiring function only. Concretely,
// inside any one function that calls (*sync.Pool).Get — or an acquire
// helper that wraps one —
//
//  1. the pooled value must be Put back on every return path (a deferred
//     Put, or an explicit Put that dominates each return), and
//  2. neither the pooled value nor anything derived from it (a field, an
//     element, a subslice) may escape: not via a return statement, not by
//     assignment to state that outlives the call (a receiver or
//     package-level field), not over a channel.
//
// Rule 2 is the PR-3 bug class made mechanical: PredictWithGrad
// originally returned gradient slices that aliased a pooled workspace,
// so two concurrent predictions silently corrupted each other once the
// pool recycled it. The only sanctioned exception is a dedicated acquire
// helper (grabGradScratch and friends) whose entire job is to hand the
// pooled value to its caller — such helpers carry a reasoned
// //lint:ignore pooldiscipline directive on the escaping return, and the
// analyzer then holds their callers to rule 1.
var PoolDiscipline = &Analyzer{
	Name: "pooldiscipline",
	Doc:  "sync.Pool values are Put on every return path and never escape the acquiring function",
	Run:  runPoolDiscipline,
}

func runPoolDiscipline(p *Pass) {
	helpers := poolAcquireHelpers(p)
	for _, f := range p.Files {
		forEachFuncScope(f, func(body *ast.BlockStmt) {
			checkPoolScope(p, body, helpers)
		})
	}
}

// forEachFuncScope visits every function body in the file — declarations
// and literals — exactly once each, treating nested literals as scopes of
// their own (a Get in a closure must be balanced in that closure).
func forEachFuncScope(f *ast.File, visit func(*ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Body)
			}
		case *ast.FuncLit:
			visit(n.Body)
		}
		return true
	})
}

// scopeStmts walks the statements of a function body without descending
// into nested function literals.
func scopeStmts(body *ast.BlockStmt, visit func(ast.Node) bool) {
	for _, st := range body.List {
		ast.Inspect(st, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			return visit(n)
		})
	}
}

// isPoolMethod reports whether the call invokes (*sync.Pool).<name>.
func isPoolMethod(p *Pass, call *ast.CallExpr, name string) bool {
	fn := callee(p, call)
	return fn != nil && fn.FullName() == "(*sync.Pool)."+name
}

// poolGetVar returns the variable bound by an assignment of the form
// v := pool.Get() or v := pool.Get().(T), or nil.
func poolGetVar(p *Pass, st *ast.AssignStmt) *types.Var {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return nil
	}
	rhs := ast.Unparen(st.Rhs[0])
	if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
		rhs = ast.Unparen(ta.X)
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isPoolMethod(p, call, "Get") {
		return nil
	}
	return lhsVar(p, st.Lhs[0])
}

func lhsVar(p *Pass, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := p.Info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}

// poolAcquireHelpers pre-scans the package for functions whose return
// statements hand out a pool-obtained value: their callers then owe the
// Put. Detection is purely syntactic over each declaration body.
func poolAcquireHelpers(p *Pass) map[*types.Func]bool {
	helpers := map[*types.Func]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var pooled []*types.Var
			scopeStmts(fd.Body, func(n ast.Node) bool {
				if st, ok := n.(*ast.AssignStmt); ok {
					if v := poolGetVar(p, st); v != nil {
						pooled = append(pooled, v)
					}
				}
				return true
			})
			if len(pooled) == 0 {
				continue
			}
			escapes := false
			scopeStmts(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, res := range ret.Results {
					for _, v := range pooled {
						if exprRootedAt(p, res, v) {
							escapes = true
						}
					}
				}
				return true
			})
			if !escapes {
				continue
			}
			if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				helpers[fn] = true
			}
		}
	}
	return helpers
}

// exprRootedAt reports whether e is the variable v or a value derived
// from it by selection, indexing, slicing or dereference — the aliasing
// chains through which pooled memory leaks. A call expression blocks the
// chain: its result is presumed a fresh value (mat.CloneVec and friends).
func exprRootedAt(p *Pass, e ast.Expr, v *types.Var) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[x].(*types.Var)
			return ok && obj == v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// poolAcquisition is one tracked pooled value within a function scope.
type poolAcquisition struct {
	v      *types.Var
	assign *ast.AssignStmt
	how    string // "(*sync.Pool).Get" or the acquire helper's name
}

// checkPoolScope enforces both rules for every acquisition in one
// function body.
func checkPoolScope(p *Pass, body *ast.BlockStmt, helpers map[*types.Func]bool) {
	var acqs []poolAcquisition
	scopeStmts(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if v := poolGetVar(p, st); v != nil {
			acqs = append(acqs, poolAcquisition{v: v, assign: st, how: "(*sync.Pool).Get"})
			return true
		}
		if len(st.Lhs) >= 1 && len(st.Rhs) == 1 {
			if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok {
				if fn := callee(p, call); fn != nil && helpers[fn] {
					if v := lhsVar(p, st.Lhs[0]); v != nil {
						acqs = append(acqs, poolAcquisition{v: v, assign: st, how: fn.Name()})
					}
				}
			}
		}
		return true
	})
	for _, acq := range acqs {
		checkPoolAcquisition(p, body, acq)
	}
}

func checkPoolAcquisition(p *Pass, body *ast.BlockStmt, acq poolAcquisition) {
	tainted := taintedVars(p, body, acq.v)
	returnEscape := false
	scopeStmts(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if st.Pos() <= acq.assign.Pos() {
				return true
			}
			for _, res := range st.Results {
				if root := taintRoot(p, res, tainted); root != nil {
					returnEscape = true
					p.Reportf(st.Pos(), "pooled value %s (from %s) escapes via return: the pool may hand it to another goroutine; copy it, or //lint:ignore pooldiscipline <reason>", root.Name(), acq.how)
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) && len(st.Rhs) != 1 {
					break
				}
				rhs := st.Rhs[0]
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				}
				root := taintRoot(p, rhs, tainted)
				if root == nil {
					continue
				}
				if outlivesCall(p, body, lhs) {
					p.Reportf(st.Pos(), "pooled value %s (from %s) stored in state that outlives the call: copy it before storing, or //lint:ignore pooldiscipline <reason>", root.Name(), acq.how)
				}
			}
		case *ast.SendStmt:
			if root := taintRoot(p, st.Value, tainted); root != nil {
				p.Reportf(st.Pos(), "pooled value %s (from %s) sent over a channel: the receiver outlives the Put; copy it, or //lint:ignore pooldiscipline <reason>", root.Name(), acq.how)
			}
		}
		return true
	})
	if returnEscape {
		// Ownership was (perhaps deliberately — acquire helpers) handed to
		// the caller; demanding a local Put on top would be contradictory.
		return
	}
	walkPutPaths(p, body, acq)
}

// taintedVars returns the set containing v and every local bound directly
// from a v-rooted expression (u := ws.u and the like). One hop of
// propagation matches how the hot path actually aliases workspaces.
func taintedVars(p *Pass, body *ast.BlockStmt, v *types.Var) map[*types.Var]bool {
	tainted := map[*types.Var]bool{v: true}
	scopeStmts(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			root := taintRoot(p, rhs, tainted)
			if root == nil {
				continue
			}
			if lv := lhsVar(p, st.Lhs[i]); lv != nil && lv != root {
				tainted[lv] = true
			}
		}
		return true
	})
	return tainted
}

// taintRoot returns the tainted variable e derives from, or nil.
func taintRoot(p *Pass, e ast.Expr, tainted map[*types.Var]bool) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj, ok := p.Info.Uses[x].(*types.Var); ok && tainted[obj] {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// outlivesCall reports whether the assignment target lhs names storage
// that survives the function call: a field or element of anything other
// than a local variable declared in this function body.
func outlivesCall(p *Pass, body *ast.BlockStmt, lhs ast.Expr) bool {
	base := lhs
	derived := false
	for {
		switch x := base.(type) {
		case *ast.SelectorExpr:
			base, derived = x.X, true
			continue
		case *ast.IndexExpr:
			base, derived = x.X, true
			continue
		case *ast.StarExpr:
			base, derived = x.X, true
			continue
		case *ast.ParenExpr:
			base = x.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false
	}
	obj, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	if !derived {
		// Rebinding a local identifier is not an escape.
		return false
	}
	// Field/element write: escapes unless the base is itself a local of
	// this function body (a scratch struct assembled and returned fresh is
	// caught by the return check instead).
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

// poolState is the per-path lifecycle of one acquisition.
type poolState int

const (
	poolNotHeld  poolState = iota // before the Get on this path
	poolReleased                  // Put (or deferred Put) has happened
	poolHeld                      // Get seen, Put still owed
)

func mergePoolState(a, b poolState) poolState {
	if a > b {
		return a
	}
	return b
}

// walkPutPaths runs a small path-sensitive walk over the statement tree:
// every return reached while the acquisition is held, and a body that
// falls off its end still holding, is reported. Deferred Puts release
// from their registration point onward — a return before the defer
// statement is still a leak.
func walkPutPaths(p *Pass, body *ast.BlockStmt, acq poolAcquisition) {
	end, terminated := walkPoolStmts(p, body.List, poolNotHeld, acq)
	if end == poolHeld && !terminated {
		p.Reportf(acq.assign.Pos(), "pooled value %s (from %s) is never Put back: every path out of the function must release it, or //lint:ignore pooldiscipline <reason>", acq.v.Name(), acq.how)
	}
}

// walkPoolStmts walks one statement list and returns the state at its
// end plus whether the list definitely terminates (return/branch) before
// falling through.
func walkPoolStmts(p *Pass, stmts []ast.Stmt, state poolState, acq poolAcquisition) (poolState, bool) {
	for _, st := range stmts {
		var terminated bool
		state, terminated = walkPoolStmt(p, st, state, acq)
		if terminated {
			return state, true
		}
	}
	return state, false
}

func walkPoolStmt(p *Pass, st ast.Stmt, state poolState, acq poolAcquisition) (poolState, bool) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		if s == acq.assign {
			return poolHeld, false
		}
		return state, false
	case *ast.ExprStmt:
		if isPutOf(p, s.X, acq.v) {
			return poolReleased, false
		}
		return state, false
	case *ast.DeferStmt:
		if isPutCall(p, s.Call, acq.v) {
			return poolReleased, false
		}
		return state, false
	case *ast.ReturnStmt:
		if state == poolHeld {
			p.Reportf(s.Pos(), "return while pooled value %s (from %s) is still checked out: Put it on this path or defer the Put, or //lint:ignore pooldiscipline <reason>", acq.v.Name(), acq.how)
		}
		return state, true
	case *ast.BranchStmt:
		return state, true
	case *ast.BlockStmt:
		return walkPoolStmts(p, s.List, state, acq)
	case *ast.IfStmt:
		if s.Init != nil {
			state, _ = walkPoolStmt(p, s.Init, state, acq)
		}
		thenState, thenTerm := walkPoolStmts(p, s.Body.List, state, acq)
		elseState, elseTerm := state, false
		if s.Else != nil {
			elseState, elseTerm = walkPoolStmt(p, s.Else, state, acq)
		}
		switch {
		case thenTerm && elseTerm:
			return state, true
		case thenTerm:
			return elseState, false
		case elseTerm:
			return thenState, false
		default:
			return mergePoolState(thenState, elseState), false
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return walkPoolBranches(p, s, state, acq), false
	case *ast.ForStmt:
		walkPoolStmts(p, s.Body.List, state, acq)
		return state, false
	case *ast.RangeStmt:
		walkPoolStmts(p, s.Body.List, state, acq)
		return state, false
	case *ast.LabeledStmt:
		return walkPoolStmt(p, s.Stmt, state, acq)
	default:
		return state, false
	}
}

// walkPoolBranches merges switch/select clause bodies conservatively: the
// after-state is the worst of the incoming state and every clause's end
// state (clauses that terminate contribute nothing).
func walkPoolBranches(p *Pass, st ast.Stmt, state poolState, acq poolAcquisition) poolState {
	merged := state
	var clauses []ast.Stmt
	switch s := st.(type) {
	case *ast.SwitchStmt:
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		}
		if end, term := walkPoolStmts(p, body, state, acq); !term {
			merged = mergePoolState(merged, end)
		}
	}
	return merged
}

func isPutOf(p *Pass, e ast.Expr, v *types.Var) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && isPutCall(p, call, v)
}

// isPutCall reports whether call is pool.Put(v) for any sync.Pool — an
// acquire helper's caller Puts to the helper's pool, so the pool identity
// is deliberately not matched, only the value.
func isPutCall(p *Pass, call *ast.CallExpr, v *types.Var) bool {
	if !isPoolMethod(p, call, "Put") || len(call.Args) != 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj, _ := p.Info.Uses[id].(*types.Var)
	return obj == v
}
