package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetOrder mechanizes three order-determinism invariants that golden
// traces cannot diagnose — they only detect the damage after the fact:
//
//  1. No accumulation in map-iteration order. A `range` over a map whose
//     body appends to an outer slice or writes output observes Go's
//     randomized iteration order; unless a sort call follows the loop in
//     the same function, the result differs run to run.
//  2. No wall-clock reads outside the injected-clock seams. time.Now,
//     time.Since and time.Until (calls or references) are forbidden in
//     library packages; cmd/ main packages and tests are exempt. The
//     sanctioned defaults for injectable clocks carry reasoned
//     suppressions.
//  3. No rng.Stream use lexically inside a parallel region. Stream
//     methods (Split included) advance the parent stream's state, so
//     calling one on a stream captured by a parallel.ForEach body or a
//     `go` function literal is both a data race and a replay hazard —
//     the PR-1 BSP-EGO bug. Streams must be split serially before the
//     region, one per index; draws on a per-index stream obtained by
//     indexing (streams[i]) are allowed.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "no map-order accumulation, wall-clock reads, or rng use inside parallel regions",
	Run:  runDetOrder,
}

func runDetOrder(p *Pass) {
	for _, f := range p.Files {
		checkWallClock(p, f)
		forEachFuncScope(f, func(body *ast.BlockStmt) {
			checkMapOrder(p, body)
		})
		checkParallelRNG(p, f)
	}
}

// checkWallClock reports calls to and references of time.Now/Since/Until
// outside main packages and test files.
func checkWallClock(p *Pass, f *ast.File) {
	if p.PkgName == "main" {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
		default:
			return true
		}
		if p.InTestFile(sel.Pos()) {
			return true
		}
		p.Reportf(sel.Pos(), "time.%s outside an injected-clock seam: wall-clock reads break bit-identical replay; thread a clock through the config, or //lint:ignore detorder <reason>", fn.Name())
		return true
	})
}

// checkMapOrder reports `range` statements over maps whose bodies
// accumulate into outer state, unless a sort call follows the loop in the
// same function scope. Test files are exempt.
func checkMapOrder(p *Pass, body *ast.BlockStmt) {
	// Sort calls in this scope, by position; a range is fine when any sort
	// runs after it.
	var sortEnds []ast.Node
	scopeStmts(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callee(p, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				sortEnds = append(sortEnds, call)
			}
		}
		return true
	})
	sortFollows := func(pos ast.Node) bool {
		for _, s := range sortEnds {
			if s.Pos() > pos.End() {
				return true
			}
		}
		return false
	}
	scopeStmts(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		if p.InTestFile(rng.Pos()) {
			return true
		}
		kind, at := mapOrderAccumulation(p, rng)
		if kind == "" || sortFollows(rng) {
			return true
		}
		p.Reportf(at.Pos(), "%s inside a map range without a sort after the loop: map iteration order is randomized, so the result differs run to run; sort afterwards, or //lint:ignore detorder <reason>", kind)
		return true
	})
}

// mapOrderAccumulation scans a map-range body for order-sensitive sinks:
// appends to a variable declared outside the loop, and output-style calls.
func mapOrderAccumulation(p *Pass, rng *ast.RangeStmt) (kind string, at ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" && len(call.Args) > 0 {
			if base, isBase := ast.Unparen(call.Args[0]).(*ast.Ident); isBase {
				if v, isVar := p.Info.Uses[base].(*types.Var); isVar && (v.Pos() < rng.Pos() || v.Pos() > rng.End()) {
					kind, at = "append to an outer slice", call
					return false
				}
			}
			return true
		}
		if fn := callee(p, call); fn != nil {
			switch fn.Name() {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf", "Write", "WriteString", "Reportf":
				kind, at = "output written in "+fn.Name(), call
				return false
			}
		}
		return true
	})
	return kind, at
}

// checkParallelRNG reports Stream method calls on captured streams inside
// parallel regions: parallel.ForEach body literals and `go` literals.
func checkParallelRNG(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := callee(p, n)
			if fn == nil || fn.Name() != "ForEach" || len(n.Args) == 0 {
				return true
			}
			if lit, ok := n.Args[len(n.Args)-1].(*ast.FuncLit); ok {
				checkRegionRNG(p, lit, "parallel.ForEach body")
			}
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkRegionRNG(p, lit, "go statement")
			}
		}
		return true
	})
}

// checkRegionRNG flags rng.Stream method calls whose receiver is a bare
// identifier declared outside the region's function literal — a stream
// shared across concurrently running workers. Receivers that index into a
// pre-split slice (streams[i]) or are declared inside the literal are the
// sanctioned pattern and stay silent.
func checkRegionRNG(p *Pass, lit *ast.FuncLit, region string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isStreamType(sig.Recv().Type()) {
			return true
		}
		recv, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true // streams[i].Draw(): per-index stream, sanctioned
		}
		v, ok := p.Info.Uses[recv].(*types.Var)
		if !ok {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // stream created inside the region
		}
		p.Reportf(call.Pos(), "rng.Stream.%s on stream %q captured by a %s: Stream methods advance shared state, a data race under -race and a replay hazard always; split one stream per index before the region, or //lint:ignore detorder <reason>", fn.Name(), v.Name(), region)
		return true
	})
}

// isStreamType matches the project's rng.Stream — by name, plus the
// package-path suffix check so both the real internal/rng and the fixture
// stub qualify, while unrelated Stream types elsewhere would still match
// only if they also live in a package ending in internal/rng or declare
// the project's draw surface. Name-based matching is deliberate: the
// fixture stub cannot import the real package.
func isStreamType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Stream" {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pathHasSuffix(pkg.Path(), "internal/rng") || strings.HasSuffix(pkg.Path(), "detorder")
}
