package analysis

import (
	"go/ast"
	"strings"
)

// GoDiscipline forbids bare `go` statements outside internal/parallel.
// The paper's protocol makes the batch size q ∈ {1,2,4,8,16} the only
// parallelism knob; every goroutine must be spawned by the bounded worker
// pool (parallel.Pool.EvalBatch, parallel.ForEach) so concurrency stays
// accounted for in the virtual-time model and deterministic replay holds.
var GoDiscipline = &Analyzer{
	Name: "godiscipline",
	Doc:  "forbid bare go statements outside internal/parallel; goroutines go through the bounded worker pool",
	Run:  runGoDiscipline,
}

func runGoDiscipline(p *Pass) {
	if pathHasSuffix(strings.TrimSuffix(p.PkgPath, "_test"), "internal/parallel") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g.Pos(), "bare go statement: route goroutines through internal/parallel (Pool.EvalBatch or ForEach) so the batch size stays the only parallelism knob")
			}
			return true
		})
	}
}
