// Package analysis is a small stdlib-only static-analysis framework plus
// the project analyzers enforced by cmd/pbolint (run `pbolint -list` for
// the current roster — this comment deliberately avoids a count that
// would rot). The paper's experimental claims rest on bit-reproducible
// runs under a wall-clock budget, which gives the codebase invariants
// that plain `go vet` cannot check:
//
//   - norand: all randomness flows through seed-splittable internal/rng
//     streams; raw math/rand imports are forbidden elsewhere.
//   - noprint: internal/ library packages never write to stdout/stderr;
//     output belongs in cmd/ binaries or returned values.
//   - floatcmp: floats are never compared with == or != outside the
//     approved tolerance helpers in internal/fp.
//   - godiscipline: no bare `go` statements outside internal/parallel, so
//     the batch size q stays the only parallelism knob.
//   - errcheck: no discarded error returns, neither `_ =` nor bare calls.
//   - ctxfirst: context.Context is always the first parameter and never
//     stored in a struct field, keeping the cancellation path visible.
//   - pooldiscipline: every sync.Pool Get is paired with a Put on every
//     return path, and pooled values never escape their function.
//   - locksafe: pointers read from mutex-guarded fields do not leave the
//     critical section alive, and no blocking call runs under a lock.
//   - detorder: no map-iteration-order, wall-clock, or
//     rng-split-in-parallel dependence outside the sanctioned seams.
//
// The framework is deliberately tiny — go/parser, go/ast, go/token and
// go/types only, no golang.org/x/tools — and supports per-line
// `//lint:ignore <analyzers> <reason>` suppressions.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned at a concrete file:line:col.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional compiler style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through an analyzer run.
type Pass struct {
	Fset    *token.FileSet
	Files   []*ast.File
	PkgPath string
	PkgName string
	Pkg     *types.Package
	Info    *types.Info

	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos for the running analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Pass)
}

// All returns the project analyzers, in stable order.
func All() []*Analyzer {
	return []*Analyzer{NoRand, NoPrint, FloatCmp, GoDiscipline, ErrCheck, CtxFirst, PoolDiscipline, LockSafe, DetOrder}
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunResult separates the diagnostics that survived suppression from the
// ones a //lint:ignore directive silenced, so callers (the -json report,
// the waiver budget) can account for both.
type RunResult struct {
	Diagnostics []Diagnostic
	Suppressed  []Diagnostic
}

// Run applies the analyzers to one loaded package and returns the
// surviving diagnostics (suppressions applied) sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	return RunPackage(pkg, analyzers).Diagnostics
}

// RunPackage applies the analyzers to one loaded package and returns both
// the surviving and the suppressed diagnostics, each sorted by position.
func RunPackage(pkg *Package, analyzers []*Analyzer) RunResult {
	sup := collectSuppressions(pkg.Fset, pkg.Files)
	var res RunResult
	res.Diagnostics = append(res.Diagnostics, sup.meta...)
	for _, a := range analyzers {
		pass := &Pass{
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			PkgName:  pkg.Name,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			analyzer: a.Name,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if sup.suppresses(a.Name, d.Pos) {
				res.Suppressed = append(res.Suppressed, d)
			} else {
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.Suppressed)
	return res
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// pathHasSuffix reports whether an import path ends with the given
// segment-aligned suffix (e.g. "internal/rng" matches "repro/internal/rng"
// but not "repro/internal/rngx").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
