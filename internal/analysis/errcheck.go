package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheck is a lite errcheck: no error return may be discarded, neither
// by a bare call statement nor by assigning to the blank identifier. A
// small allowlist admits calls whose error is documented to always be nil
// (bytes.Buffer / strings.Builder methods) or meaningless for this
// codebase (fmt printing to the standard streams from cmd/ binaries).
// Deferred calls are exempt with one pointed exception: `defer f.Close()`
// and `defer f.Sync()` on an *os.File. On write paths those errors are
// the write error — the kernel may not surface a failed write until
// close/fsync — and a snapshot or export that "succeeded" while the close
// error vanished is exactly the torn-state bug the session subsystem
// exists to prevent. Close them explicitly and check.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "forbid discarded error returns via bare calls or _ assignment",
	Run:  runErrCheck,
}

var errorType = types.Universe.Lookup("error").Type()

func runErrCheck(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !returnsError(p, call) || allowlisted(p, call) {
					return true
				}
				p.Reportf(call.Pos(), "unchecked error returned by %s: handle it, or //lint:ignore errcheck <reason>", calleeName(p, call))
			case *ast.AssignStmt:
				checkBlankDiscard(p, st)
			case *ast.DeferStmt:
				checkDeferredFileCall(p, st)
			}
			return true
		})
	}
}

// checkDeferredFileCall flags `defer f.Close()` / `defer f.Sync()` on an
// *os.File: the deferred error is silently dropped, and for files being
// written that error is the last chance to learn a write failed.
func checkDeferredFileCall(p *Pass, st *ast.DeferStmt) {
	fn := callee(p, st.Call)
	if fn == nil || (fn.Name() != "Close" && fn.Name() != "Sync") {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Recv().Type().String() != "*os.File" {
		return
	}
	p.Reportf(st.Pos(), "deferred (*os.File).%s discards its error — on write paths that error is the write failure; close explicitly and check, or //lint:ignore errcheck <reason>", fn.Name())
}

func checkBlankDiscard(p *Pass, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(st.Rhs) == len(st.Lhs):
			t = p.Info.TypeOf(st.Rhs[i])
		case len(st.Rhs) == 1:
			if tup, ok := p.Info.TypeOf(st.Rhs[0]).(*types.Tuple); ok && i < tup.Len() {
				t = tup.At(i).Type()
			}
		}
		if t != nil && types.Identical(t, errorType) {
			p.Reportf(id.Pos(), "error discarded with _: handle it, or //lint:ignore errcheck <reason>")
		}
	}
}

// returnsError reports whether any result of the call has type error.
func returnsError(p *Pass, call *ast.CallExpr) bool {
	switch t := p.Info.TypeOf(call).(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// callee resolves the called *types.Func, unwrapping parentheses.
func callee(p *Pass, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := callee(p, call); fn != nil {
		return fn.FullName()
	}
	return "call"
}

var errAlwaysNilRecv = map[string]bool{
	"*bytes.Buffer":    true,
	"*strings.Builder": true,
}

func allowlisted(p *Pass, call *ast.CallExpr) bool {
	fn := callee(p, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// bytes.Buffer and strings.Builder document their error results
		// as always nil.
		return errAlwaysNilRecv[sig.Recv().Type().String()]
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && benignWriter(p, call.Args[0])
	}
	return false
}

// benignWriter reports writers whose fmt errors carry no information:
// in-memory buffers, and the process's own standard streams.
func benignWriter(p *Pass, arg ast.Expr) bool {
	if t := p.Info.TypeOf(arg); t != nil && errAlwaysNilRecv[t.String()] {
		return true
	}
	sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Stdout" && sel.Sel.Name != "Stderr") {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := p.Info.Uses[x].(*types.PkgName)
	return ok && pkg.Imported().Path() == "os"
}
