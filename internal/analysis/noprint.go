package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPrint keeps internal/ library packages from writing directly to the
// process's standard streams: no fmt.Print*, no log package output, no
// direct os.Stdout/os.Stderr references. Library code returns values or
// accepts an io.Writer; presentation belongs to cmd/ binaries. Test files
// and package main are exempt.
var NoPrint = &Analyzer{
	Name: "noprint",
	Doc:  "forbid fmt.Print*/log output and direct os.Stdout/os.Stderr use inside internal/ library packages",
	Run:  runNoPrint,
}

var noPrintFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"os": {"Stdout": true, "Stderr": true},
}

func runNoPrint(p *Pass) {
	if p.PkgName == "main" || !strings.Contains("/"+p.PkgPath+"/", "/internal/") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgIdent, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			members, ok := noPrintFuncs[pkgIdent.Name]
			if !ok || !members[sel.Sel.Name] {
				return true
			}
			// Confirm the identifier really is the stdlib package, not a
			// local variable that happens to be called fmt/log/os.
			if obj, ok := p.Info.Uses[pkgIdent]; ok {
				if _, isPkg := obj.(*types.PkgName); !isPkg {
					return true
				}
			}
			if p.InTestFile(n.Pos()) {
				return true
			}
			what := "call of"
			if pkgIdent.Name == "os" {
				what = "reference to"
			}
			p.Reportf(sel.Pos(), "%s %s.%s in internal package %s: return values or accept an io.Writer; output belongs in cmd/", what, pkgIdent.Name, sel.Sel.Name, p.PkgPath)
			return true
		})
	}
}
