package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked compilation unit. A directory
// with an external test package (package foo_test) yields two Packages.
type Package struct {
	Path  string // import path, derived from the module path
	Name  string // package name from the package clause
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds non-fatal type-check problems. Analyzers run on
	// whatever information survived; the CLI reports them separately.
	TypeErrors []error
}

// Loader parses and type-checks packages. One Loader shares a FileSet and
// a source importer across all packages so stdlib dependencies are only
// compiled once per run.
type Loader struct {
	Fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader backed by the stdlib source importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Load expands the patterns (directories, or dir/... recursive walks)
// into package directories, then parses and type-checks each. Results are
// sorted by import path for deterministic output.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := expandPatterns(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		ps, err := l.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		pkgs = append(pkgs, ps...)
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return pkgs[i].Name < pkgs[j].Name
	})
	return pkgs, nil
}

func expandPatterns(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, string(filepath.Separator)))
		if root == "" {
			root = "."
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else if _, err := os.Stat(root); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(path)
			if path != root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "vendor") {
				return filepath.SkipDir
			}
			// testdata holds analyzer fixtures which are not part of the
			// module build; skip it unless the walk was rooted inside it.
			if path != root && base == "testdata" && !strings.Contains(root, "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses every .go file in dir and type-checks up to two units:
// the package itself (including in-package _test.go files) and, when
// present, the external foo_test package.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := map[string][]*ast.File{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(f) {
			continue
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], f)
	}
	importPath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}
	// In-package _test.go files share the package clause of their package
	// and are grouped with it naturally; an external test package
	// (package foo_test) becomes a unit of its own.
	var names []string
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, name := range names {
		path := importPath
		if strings.HasSuffix(name, "_test") {
			path += "_test"
		}
		pkgs = append(pkgs, l.check(path, name, dir, byPkg[name]))
	}
	return pkgs, nil
}

// buildConstraintSatisfied evaluates a file's //go:build line against the
// host platform with every other tag (race, integration, ...) off —
// matching what a default `go build` would select. Without this, a
// build-tag pair like testutil's race_on.go/race_off.go type-checks as
// one unit and reports a bogus redeclaration.
func buildConstraintSatisfied(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				// An unparseable constraint: include the file and let the
				// type checker complain if it truly conflicts.
				return true
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == "gc" || strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// check type-checks one unit, tolerating type errors.
func (l *Loader) check(path, name, dir string, files []*ast.File) *Package {
	pkg := &Package{Path: path, Name: name, Dir: dir, Fset: l.Fset, Files: files}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	//lint:ignore errcheck Check's error is the first of pkg.TypeErrors, already collected by the Error handler above
	pkg.Types, _ = conf.Check(path, l.Fset, files, pkg.Info)
	return pkg
}

// importPathFor derives the import path of dir from the enclosing
// module's go.mod. Fixture directories below testdata get the same
// treatment, yielding pseudo-paths like
// repro/internal/analysis/testdata/src/internal/rng — which is what lets
// fixtures exercise path-based analyzer exemptions.
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			// Outside any module: fall back to the cleaned directory path.
			return filepath.ToSlash(dir), nil
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}
