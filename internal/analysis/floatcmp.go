package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != on floating-point operands outside the
// approved tolerance helpers in internal/fp. Exact float equality is
// almost never what numeric code means; where it is (sentinel checks,
// bit-exact replay assertions), route through fp.Exact or suppress with a
// reasoned //lint:ignore. Comparisons where both operands are compile-time
// constants are allowed, as are _test.go files: determinism tests assert
// bit-identical replay by design.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on floating-point operands outside internal/fp tolerance helpers",
	Run:  runFloatCmp,
}

func runFloatCmp(p *Pass) {
	if pathHasSuffix(p.PkgPath, "internal/fp") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, okx := p.Info.Types[be.X]
			ty, oky := p.Info.Types[be.Y]
			if !okx || !oky || !isFloat(tx.Type) && !isFloat(ty.Type) {
				return true
			}
			if tx.Value != nil && ty.Value != nil {
				return true // constant folding: decided at compile time
			}
			if p.InTestFile(be.Pos()) {
				return true
			}
			p.Reportf(be.Pos(), "floating-point %s comparison: use internal/fp (fp.Eq, fp.Zero, fp.Exact) or math.IsNaN/math.IsInf", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
