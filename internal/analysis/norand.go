package analysis

import (
	"strconv"
	"strings"
)

// NoRand forbids math/rand and math/rand/v2 everywhere except inside
// internal/rng (the package that wraps them behind seed-splittable
// streams) and its own tests. Every other component must draw from an
// rng.Stream so whole experiments replay bit-identically from one master
// seed.
var NoRand = &Analyzer{
	Name: "norand",
	Doc:  "forbid math/rand outside internal/rng; randomness must flow through seed-splittable rng.Stream values",
	Run:  runNoRand,
}

func runNoRand(p *Pass) {
	if pathHasSuffix(strings.TrimSuffix(p.PkgPath, "_test"), "internal/rng") {
		return
	}
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %q outside internal/rng: draw from a seed-splittable internal/rng.Stream instead", path)
			}
		}
	}
}
