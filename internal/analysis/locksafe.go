package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe enforces the critical-section hygiene the serving stack's
// review history demanded twice over. It encodes two invariants:
//
//  1. No pointer read from a mutex-guarded field may leave the critical
//     section alive. Returning (or sending, or handing to a callback)
//     such a pointer publishes memory that the next lock holder will
//     mutate — the PR-5 bug, where /result served a live *core.Result
//     that the session kept appending to. The sanctioned escape hatch is
//     a deep copy: an expression that flows through a Clone/Copy-style
//     call is considered detached and is not reported.
//  2. No blocking operation — channel send/receive, select,
//     (*sync.WaitGroup).Wait, (*sync.Cond).Wait, time.Sleep, net/http
//     round trips, or a call through a caller-supplied function value —
//     may run while a lock is held. Each is a lock-ordering deadlock or a
//     tail-latency cliff waiting for load.
//
// The analysis is lexical and per-function: a region is "locked" from a
// mu.Lock()/RLock() call to the matching Unlock in the same statement
// list, or to the end of the function when the Unlock is deferred.
// Pointer-typed locals bound from guarded fields inside a locked region
// stay suspect for the rest of the function — releasing the lock does
// not detach them, copying does.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "no guarded pointer escapes its critical section; no blocking call while a lock is held",
	Run:  runLockSafe,
}

func runLockSafe(p *Pass) {
	for _, f := range p.Files {
		forEachFuncScope(f, func(body *ast.BlockStmt) {
			checkLockScope(p, body)
		})
	}
}

// lockMethodRoot returns the printed receiver expression ("s.mu") when
// call is a Lock/Unlock-family method on a sync mutex, together with the
// method name.
func lockMethodRoot(p *Pass, call *ast.CallExpr) (root string, guard ast.Expr, method string, ok bool) {
	fn := callee(p, call)
	if fn == nil {
		return "", nil, "", false
	}
	switch fn.FullName() {
	case "(*sync.Mutex).Lock", "(*sync.Mutex).Unlock",
		"(*sync.RWMutex).Lock", "(*sync.RWMutex).Unlock",
		"(*sync.RWMutex).RLock", "(*sync.RWMutex).RUnlock":
	default:
		return "", nil, "", false
	}
	sel, selOk := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !selOk {
		return "", nil, "", false
	}
	// The guard is the struct holding the mutex: for s.mu.Lock() it is s,
	// for a plain local mu.Lock() there is none.
	if inner, innerOk := ast.Unparen(sel.X).(*ast.SelectorExpr); innerOk {
		guard = inner.X
	}
	return types.ExprString(sel.X), guard, fn.Name(), true
}

func isLockAcquire(method string) bool { return method == "Lock" || method == "RLock" }

// lockScopeState tracks one function's walk.
type lockScopeState struct {
	held       map[string]int  // lock root -> acquisition depth
	deferred   map[string]bool // lock root -> deferred Unlock registered
	guardRoots map[*types.Var]bool
	tainted    map[*types.Var]bool
}

// anyHeld reports whether any lock is currently held, naming the
// lexicographically smallest root so diagnostics stay deterministic when
// several locks are held at once.
func (st *lockScopeState) anyHeld() (string, bool) {
	best, found := "", false
	for root, n := range st.held {
		if n > 0 && (!found || root < best) {
			best, found = root, true
		}
	}
	for root, d := range st.deferred {
		if d && (!found || root < best) {
			best, found = root, true
		}
	}
	return best, found
}

func checkLockScope(p *Pass, body *ast.BlockStmt) {
	st := &lockScopeState{
		held:       map[string]int{},
		deferred:   map[string]bool{},
		guardRoots: map[*types.Var]bool{},
		tainted:    map[*types.Var]bool{},
	}
	walkLockStmts(p, body.List, st)
}

func walkLockStmts(p *Pass, stmts []ast.Stmt, st *lockScopeState) {
	for _, s := range stmts {
		walkLockStmt(p, s, st)
	}
}

func walkLockStmt(p *Pass, s ast.Stmt, st *lockScopeState) {
	switch n := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if root, guard, method, ok := lockMethodRoot(p, call); ok {
				if isLockAcquire(method) {
					st.held[root]++
					if g := guardVar(p, guard); g != nil {
						st.guardRoots[g] = true
					}
				} else if st.held[root] > 0 {
					st.held[root]--
				}
				return
			}
		}
		checkLockedStmt(p, n, st)
	case *ast.DeferStmt:
		if root, _, method, ok := lockMethodRoot(p, n.Call); ok && !isLockAcquire(method) {
			st.deferred[root] = true
			if st.held[root] > 0 {
				st.held[root]--
			}
			return
		}
		// A deferred call is not part of the locked region's straight-line
		// execution; skip its blocking analysis.
	case *ast.AssignStmt:
		recordGuardedReads(p, n, st)
		checkLockedStmt(p, n, st)
	case *ast.ReturnStmt:
		checkLockedReturn(p, n, st)
	case *ast.BlockStmt:
		walkLockStmts(p, n.List, st)
	case *ast.IfStmt:
		if n.Init != nil {
			walkLockStmt(p, n.Init, st)
		}
		checkLockedExpr(p, n.Cond, st)
		walkLockStmts(p, n.Body.List, st)
		if n.Else != nil {
			walkLockStmt(p, n.Else, st)
		}
	case *ast.ForStmt:
		walkLockStmts(p, n.Body.List, st)
	case *ast.RangeStmt:
		walkLockStmts(p, n.Body.List, st)
	case *ast.SwitchStmt:
		walkLockBranches(p, n.Body.List, st)
	case *ast.TypeSwitchStmt:
		walkLockBranches(p, n.Body.List, st)
	case *ast.SelectStmt:
		if _, held := st.anyHeld(); held {
			root, _ := st.anyHeld()
			p.Reportf(n.Pos(), "select while %s is held blocks the critical section: move the channel operation outside the lock, or //lint:ignore locksafe <reason>", root)
		}
		walkLockBranches(p, n.Body.List, st)
	case *ast.SendStmt:
		if root, held := st.anyHeld(); held {
			p.Reportf(n.Pos(), "channel send while %s is held blocks the critical section: move it outside the lock, or //lint:ignore locksafe <reason>", root)
		} else if tv := taintRoot(p, n.Value, st.tainted); tv != nil {
			p.Reportf(n.Pos(), "guarded pointer %s sent over a channel after the lock was released: the receiver sees live, still-mutating state; send a Clone, or //lint:ignore locksafe <reason>", tv.Name())
		}
	case *ast.LabeledStmt:
		walkLockStmt(p, n.Stmt, st)
	case *ast.GoStmt:
		// The goroutine body runs outside this lock region.
	default:
		checkLockedStmt(p, s, st)
	}
}

func walkLockBranches(p *Pass, clauses []ast.Stmt, st *lockScopeState) {
	for _, c := range clauses {
		switch cc := c.(type) {
		case *ast.CaseClause:
			walkLockStmts(p, cc.Body, st)
		case *ast.CommClause:
			walkLockStmts(p, cc.Body, st)
		}
	}
}

func guardVar(p *Pass, e ast.Expr) *types.Var {
	if e == nil {
		return nil
	}
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := p.Info.Uses[id].(*types.Var)
	return v
}

// recordGuardedReads taints locals bound from pointer-like guarded-field
// reads while a lock on that guard is in effect.
func recordGuardedReads(p *Pass, n *ast.AssignStmt, st *lockScopeState) {
	if _, held := st.anyHeld(); !held {
		return
	}
	for i, lhs := range n.Lhs {
		var rhs ast.Expr
		switch {
		case len(n.Rhs) == len(n.Lhs):
			rhs = n.Rhs[i]
		case len(n.Rhs) == 1:
			rhs = n.Rhs[0]
		default:
			continue
		}
		if !isGuardedFieldChain(p, rhs, st) {
			continue
		}
		lv := lhsVar(p, lhs)
		if lv == nil || !isPointerLike(lv.Type()) {
			continue
		}
		st.tainted[lv] = true
	}
}

// isGuardedFieldChain reports whether e is a field read (possibly through
// map/slice indexing) rooted at a variable whose mutex has been locked in
// this function.
func isGuardedFieldChain(p *Pass, e ast.Expr, st *lockScopeState) bool {
	derived := false
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj, ok := p.Info.Uses[x].(*types.Var)
			return ok && derived && st.guardRoots[obj]
		case *ast.SelectorExpr:
			e, derived = x.X, true
		case *ast.IndexExpr:
			e, derived = x.X, true
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// isPointerLike reports types through which a later mutation under the
// lock remains visible to the holder of the value.
func isPointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// checkLockedReturn reports returns that publish guarded pointers: a
// tainted local, or a direct pointer-like field chain off a guard while
// its lock is (still) held. An expression routed through any call —
// Clone, CloneVec, a constructor — is considered detached.
func checkLockedReturn(p *Pass, n *ast.ReturnStmt, st *lockScopeState) {
	for _, res := range n.Results {
		if tv := taintRoot(p, res, st.tainted); tv != nil {
			if t := p.Info.TypeOf(res); isPointerLike(t) {
				p.Reportf(n.Pos(), "guarded pointer %s returned from the critical section: the caller sees live, still-mutating state; return a Clone/deep copy, or //lint:ignore locksafe <reason>", tv.Name())
				continue
			}
		}
		if _, held := st.anyHeld(); held && isGuardedFieldChain(p, res, st) {
			if t := p.Info.TypeOf(res); isPointerLike(t) {
				p.Reportf(n.Pos(), "guarded field returned while its lock is held: the caller sees live, still-mutating state; return a Clone/deep copy, or //lint:ignore locksafe <reason>")
			}
		}
	}
}

// checkLockedStmt scans a statement's expressions for blocking operations
// made while any lock is held.
func checkLockedStmt(p *Pass, s ast.Stmt, st *lockScopeState) {
	root, held := st.anyHeld()
	if !held {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				p.Reportf(x.Pos(), "channel receive while %s is held blocks the critical section: move it outside the lock, or //lint:ignore locksafe <reason>", root)
			}
		case *ast.CallExpr:
			reportBlockingCall(p, x, root)
		}
		return true
	})
}

func checkLockedExpr(p *Pass, e ast.Expr, st *lockScopeState) {
	if e == nil {
		return
	}
	root, held := st.anyHeld()
	if !held {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			reportBlockingCall(p, call, root)
		}
		return true
	})
}

func reportBlockingCall(p *Pass, call *ast.CallExpr, root string) {
	if fn := callee(p, call); fn != nil {
		blocking := false
		switch fn.FullName() {
		case "(*sync.WaitGroup).Wait", "(*sync.Cond).Wait", "time.Sleep":
			blocking = true
		}
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "net/http" {
			blocking = true
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := types.Unalias(sig.Recv().Type()).(*types.Pointer); ok {
				if nt, ok := named.Elem().(*types.Named); ok && nt.Obj().Pkg() != nil && nt.Obj().Pkg().Path() == "net/http" {
					blocking = true
				}
			}
		}
		if blocking {
			p.Reportf(call.Pos(), "blocking call %s while %s is held: it stalls every other goroutine contending for the lock; move it outside, or //lint:ignore locksafe <reason>", fn.FullName(), root)
		}
		return
	}
	// Dynamic call through a function value: the callee is opaque and may
	// block or re-enter the lock. Method values and interface methods are
	// resolved by callee() above, so this catches caller-supplied
	// callbacks specifically.
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return
	}
	if v, ok := p.Info.Uses[id].(*types.Var); ok {
		if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
			p.Reportf(call.Pos(), "callback %s invoked while %s is held: an opaque function value may block or re-enter the lock; call it after unlocking, or //lint:ignore locksafe <reason>", v.Name(), root)
		}
	}
}
