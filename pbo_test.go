package pbo

import (
	"bytes"
	"context"
	"math"
	"testing"
	"time"
)

func TestStrategiesList(t *testing.T) {
	s := Strategies()
	if len(s) != 5 {
		t.Fatalf("got %d strategies", len(s))
	}
	s[0] = "mutated"
	if Strategies()[0] == "mutated" {
		t.Fatal("Strategies returns aliased slice")
	}
}

func TestBenchmarkProblem(t *testing.T) {
	p, err := BenchmarkProblem("ackley", 12, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 12 || !p.Minimize {
		t.Fatalf("problem = %+v", p)
	}
	y, cost := p.Evaluator.Eval(make([]float64, 12))
	if math.Abs(y) > 1e-9 {
		t.Fatalf("ackley(0) = %v", y)
	}
	if cost != 10*time.Second {
		t.Fatalf("cost = %v", cost)
	}
	if _, err := BenchmarkProblem("nope", 3, 0); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestUPHESProblem(t *testing.T) {
	p, err := UPHESProblem(DefaultUPHESConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 12 || p.Minimize {
		t.Fatalf("problem = %+v", p)
	}
}

func TestCustomProblemValidation(t *testing.T) {
	if _, err := CustomProblem("x", nil, []float64{0}, []float64{1, 2}, true, 0); err == nil {
		t.Fatal("expected bounds error")
	}
}

func TestOptimizeEndToEnd(t *testing.T) {
	p, err := CustomProblem("sphere",
		func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		[]float64{-3, -3}, []float64{3, 3}, true, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Options{
		Strategy:       "KB-q-EGO",
		BatchSize:      2,
		InitSamples:    8,
		Budget:         80 * time.Second,
		OverheadFactor: 1,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestY > 1.5 {
		t.Fatalf("optimize made no progress: %v", res.BestY)
	}
	if res.Strategy != "KB-q-EGO" || res.Batch != 2 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
}

func TestOptimizeContextCancelled(t *testing.T) {
	p, err := CustomProblem("sphere",
		func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		[]float64{-3, -3}, []float64{3, 3}, true, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := OptimizeContext(ctx, p, Options{
		Strategy: "KB-q-EGO", BatchSize: 2, InitSamples: 4,
		Budget: time.Minute, OverheadFactor: 1, Seed: 7,
	})
	if err == nil {
		t.Fatal("expected an interruption error")
	}
	if !Interrupted(err) {
		t.Fatalf("Interrupted() false for %v", err)
	}
	if res == nil || res.Cycles != 0 {
		t.Fatalf("partial result = %+v", res)
	}
}

func TestOptimizeDefaultsStrategy(t *testing.T) {
	p, err := CustomProblem("sphere1",
		func(x []float64) float64 { return x[0] * x[0] },
		[]float64{-1}, []float64{1}, true, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Options{BatchSize: 2, InitSamples: 6, Budget: 30 * time.Second, OverheadFactor: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "mic-q-EGO" {
		t.Fatalf("default strategy = %s", res.Strategy)
	}
}

func TestOptimizeUnknownStrategy(t *testing.T) {
	p, err := CustomProblem("s", func(x []float64) float64 { return 0 },
		[]float64{0}, []float64{1}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Optimize(p, Options{Strategy: "nope"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestUPHESSimulatorBreakdown(t *testing.T) {
	sim, err := UPHESSimulator(DefaultUPHESConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := sim.Detail(make([]float64, 12))
	if b.Profit >= 0 {
		t.Fatalf("idle schedule should lose the fixed O&M cost: %+v", b)
	}
}

func TestExtendedStrategiesAccepted(t *testing.T) {
	names := ExtendedStrategies()
	if len(names) != 4 {
		t.Fatalf("extended strategies = %v", names)
	}
	p, err := CustomProblem("s1", func(x []float64) float64 { return x[0] * x[0] },
		[]float64{-1}, []float64{1}, true, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Options{
		Strategy: "TS-RFF", BatchSize: 2, InitSamples: 6,
		Budget: 30 * time.Second, OverheadFactor: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != "TS-RFF" {
		t.Fatalf("strategy = %s", res.Strategy)
	}
}

func TestSaveLoadResult(t *testing.T) {
	p, err := CustomProblem("s2", func(x []float64) float64 { return x[0] * x[0] },
		[]float64{-1}, []float64{1}, true, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(p, Options{BatchSize: 2, InitSamples: 4, Budget: 20 * time.Second, OverheadFactor: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := LoadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.BestY != res.BestY || back.Evals != res.Evals {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
}
